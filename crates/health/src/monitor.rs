//! Live health scoring: fold SMART samples and trace events into a
//! [`HealthReport`] (DESIGN.md §11).
//!
//! A [`HealthMonitor`] is owned by a simulation driver, fed the
//! device's own [`SmartReport`] at every trajectory sample (the same
//! points `export_gauges` already lands on) and, at end of run, the
//! recorded trace. Every input is deterministic, every fold happens in
//! sample/record order, and the output is plain data — so the report
//! is byte-identical across thread counts whenever the underlying
//! telemetry is, which PR 2 already guarantees.

use crate::anomaly::{to_milli, Anomaly, AnomalyKind, RollingZScore};
use crate::forecast::WearForecaster;
use salamander_ftl::smart::SmartReport;
use salamander_obs::{
    DeathCause, DecommissionCause, MetricsHandle, SimTime, TraceEvent, TraceRecord,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The clock a monitor's ticks are read on. Determines which half of
/// [`SimTime`] stamps anomalies and what the projection horizons mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum HealthUnit {
    /// Ticks are host-write op indexes (`EnduranceSim`).
    #[default]
    Ops,
    /// Ticks are simulated days (`DailySim`, fleet grids).
    Days,
}

impl HealthUnit {
    /// Stable lowercase name for rendering.
    pub fn name(&self) -> &'static str {
        match self {
            HealthUnit::Ops => "ops",
            HealthUnit::Days => "days",
        }
    }

    /// A [`SimTime`] stamp for a tick on this clock.
    pub fn time(&self, tick: u64) -> SimTime {
        match self {
            HealthUnit::Ops => SimTime::new(0, tick),
            HealthUnit::Days => SimTime::new(tick as u32, 0),
        }
    }

    /// The tick a [`SimTime`] reads on this clock.
    pub fn tick(&self, time: SimTime) -> u64 {
        match self {
            HealthUnit::Ops => time.op,
            HealthUnit::Days => time.day as u64,
        }
    }
}

/// `subject` value for anomalies scoped to the whole device rather
/// than one minidisk.
pub const DEVICE_SUBJECT: u32 = u32::MAX;

/// Lifecycle state of one minidisk, reconstructed from its trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MdiskState {
    /// In service.
    #[default]
    Active,
    /// Decommissioned with a grace period; data still readable.
    Draining,
    /// Decommissioned outright.
    Decommissioned,
    /// Force-purged before the drain was acknowledged.
    Purged,
}

/// Health of one minidisk: lifecycle state plus error pressure,
/// reduced to a 0–100 score (see DESIGN.md §11 for the exact model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MdiskHealth {
    /// Minidisk id.
    pub id: u32,
    /// Lifecycle state.
    pub state: MdiskState,
    /// 0–100 (0 = out of service).
    pub score: u32,
    /// ECC retry reads served by this minidisk.
    pub read_retries: u64,
    /// Reads lost even after retries.
    pub uncorrectable_reads: u64,
    /// Tiredness level it was regenerated at, if RegenS created it.
    pub regen_level: Option<u8>,
    /// When it was decommissioned, if it was.
    pub decommissioned_at: Option<SimTime>,
    /// Which shortfall loop decommissioned it.
    pub decommission_cause: Option<DecommissionCause>,
}

impl MdiskHealth {
    fn new(id: u32) -> Self {
        MdiskHealth {
            id,
            state: MdiskState::Active,
            score: 100,
            read_retries: 0,
            uncorrectable_reads: 0,
            regen_level: None,
            decommissioned_at: None,
            decommission_cause: None,
        }
    }

    /// Recompute the score from state and error pressure: out of
    /// service ⇒ 0, draining ⇒ capped at 20, otherwise 100 minus a
    /// regen-level discount and retry/uncorrectable penalties.
    fn rescore(&mut self) {
        self.score = match self.state {
            MdiskState::Decommissioned | MdiskState::Purged => 0,
            MdiskState::Draining => 20,
            MdiskState::Active => {
                let base = 100u64.saturating_sub(5 * self.regen_level.unwrap_or(0) as u64);
                let penalty =
                    (2 * self.read_retries).min(40) + (20 * self.uncorrectable_reads).min(60);
                base.saturating_sub(penalty) as u32
            }
        };
    }
}

/// The monitor's end-of-run product: device score, wear rates,
/// shrink/death projections, per-minidisk health, anomalies.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HealthReport {
    /// Clock the rates and projections are expressed in.
    pub unit: HealthUnit,
    /// SMART samples folded.
    pub samples: u64,
    /// Device score, 0–100 (100 = fresh; see DESIGN.md §11).
    pub score: u32,
    /// Headroom (oPages) at the last sample.
    pub headroom_opages: u64,
    /// Life-remaining fraction at the last sample.
    pub life_remaining: f64,
    /// EWMA headroom consumption per tick.
    pub headroom_rate: f64,
    /// EWMA life-fraction consumption per tick.
    pub life_rate: f64,
    /// EWMA net page flow per tick, per tiredness level (index 4 =
    /// dead; its rate is the retirement rate).
    pub level_rates: [f64; 5],
    /// Projected ticks until the next forced shrink (`None` = no
    /// consumption observed yet).
    pub ticks_to_next_shrink: Option<u64>,
    /// Projected ticks until device death.
    pub ticks_to_death: Option<u64>,
    /// When the device actually died, if the trace saw it.
    pub died_at: Option<SimTime>,
    /// Why it died.
    pub death_cause: Option<DeathCause>,
    /// Per-minidisk health, ascending by id (only minidisks the trace
    /// mentions; a silent minidisk is a healthy one).
    pub mdisks: Vec<MdiskHealth>,
    /// Detected anomalies in detection order.
    pub anomalies: Vec<Anomaly>,
}

impl HealthReport {
    /// Render the report as `salamander_health_*` gauges/counters.
    /// Projections export −1 for "no evidence yet" (gauges cannot be
    /// absent per-sample). Per-minidisk scores export only the
    /// [`Self::MDISK_GAUGE_CAP`] *worst* minidisks so a thousand-disk
    /// device doesn't swamp the exposition; the full list is in the
    /// report itself.
    pub fn export_gauges(&self, metrics: &MetricsHandle) {
        if !metrics.is_enabled() {
            return;
        }
        metrics.set_gauge("salamander_health_score", self.score as f64);
        metrics.set_gauge("salamander_health_samples", self.samples as f64);
        metrics.set_gauge(
            "salamander_health_ticks_to_next_shrink",
            self.ticks_to_next_shrink.map_or(-1.0, |t| t as f64),
        );
        metrics.set_gauge(
            "salamander_health_ticks_to_death",
            self.ticks_to_death.map_or(-1.0, |t| t as f64),
        );
        metrics.set_gauge("salamander_health_headroom_rate", self.headroom_rate);
        metrics.set_gauge("salamander_health_life_rate", self.life_rate);
        for (i, rate) in self.level_rates.iter().enumerate() {
            metrics.set_gauge(
                &format!("salamander_health_level_rate{{level=\"L{i}\"}}"),
                *rate,
            );
        }
        let mut worst: Vec<&MdiskHealth> = self.mdisks.iter().collect();
        worst.sort_by_key(|m| (m.score, m.id));
        for m in worst.into_iter().take(Self::MDISK_GAUGE_CAP) {
            metrics.set_gauge(
                &format!("salamander_health_mdisk_score{{mdisk=\"{}\"}}", m.id),
                m.score as f64,
            );
        }
        for a in &self.anomalies {
            metrics.inc(
                &format!(
                    "salamander_health_anomalies_total{{kind=\"{}\"}}",
                    a.kind.name()
                ),
                1,
            );
        }
    }

    /// How many (worst-scoring) minidisks `export_gauges` exposes.
    pub const MDISK_GAUGE_CAP: usize = 16;
}

/// Folds SMART samples and trace records into a [`HealthReport`].
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    unit: HealthUnit,
    forecaster: WearForecaster,
    samples: u64,
    last: Option<SmartReport>,
    last_retries: u64,
    retry_detector: RollingZScore,
    gc_detector: RollingZScore,
    /// GC passes are bucketed into fixed tick windows before z-scoring.
    gc_bucket_ticks: u64,
    mdisks: BTreeMap<u32, MdiskHealth>,
    anomalies: Vec<Anomaly>,
    died_at: Option<SimTime>,
    death_cause: Option<DeathCause>,
}

impl HealthMonitor {
    /// A monitor on the given clock. `gc_bucket_ticks` sets the GC
    /// spike-detection granularity; the sim drivers pass their sample
    /// interval so "per bucket" and "per sample" coincide.
    pub fn new(unit: HealthUnit, gc_bucket_ticks: u64) -> Self {
        HealthMonitor {
            unit,
            forecaster: WearForecaster::new(),
            samples: 0,
            last: None,
            last_retries: 0,
            retry_detector: RollingZScore::standard(),
            gc_detector: RollingZScore::standard(),
            gc_bucket_ticks: gc_bucket_ticks.max(1),
            mdisks: BTreeMap::new(),
            anomalies: Vec::new(),
            died_at: None,
            death_cause: None,
        }
    }

    /// Fold in one SMART sample at `tick`.
    pub fn observe(&mut self, tick: u64, smart: &SmartReport) {
        self.forecaster.observe(
            tick,
            smart.headroom_opages,
            smart.life_remaining,
            &smart.level_histogram,
        );
        // Read-retry burst: z-score the per-sample retry delta.
        let delta = smart.read_retries.saturating_sub(self.last_retries);
        if self.samples > 0 {
            if let Some(dev) = self.retry_detector.observe(delta as f64) {
                self.anomalies.push(Anomaly {
                    time: self.unit.time(tick),
                    kind: AnomalyKind::ReadRetryBurst,
                    subject: DEVICE_SUBJECT,
                    value_milli: to_milli(delta as f64),
                    mean_milli: to_milli(dev.mean),
                    z_milli: to_milli(dev.z),
                });
            }
        }
        self.last_retries = smart.read_retries;
        self.last = Some(*smart);
        self.samples += 1;
    }

    /// Fold in a recorded trace: minidisk lifecycle states, per-minidisk
    /// error pressure, GC-rate spikes, device death. Call once, after
    /// the run, with the records in emission order.
    pub fn ingest_trace(&mut self, records: &[TraceRecord]) {
        let mut gc_bucket: Option<u64> = None;
        let mut gc_count = 0u64;
        for rec in records {
            match &rec.event {
                TraceEvent::ReadRetry { mdisk, retries } => {
                    let m = self.mdisk_entry(*mdisk);
                    m.read_retries += *retries as u64;
                }
                TraceEvent::UncorrectableRead { mdisk, .. } => {
                    self.mdisk_entry(*mdisk).uncorrectable_reads += 1;
                }
                TraceEvent::MdiskDecommissioned {
                    id,
                    draining,
                    cause,
                    ..
                } => {
                    let time = rec.time;
                    let (draining, cause) = (*draining, *cause);
                    let m = self.mdisk_entry(*id);
                    m.state = if draining {
                        MdiskState::Draining
                    } else {
                        MdiskState::Decommissioned
                    };
                    m.decommissioned_at = Some(time);
                    m.decommission_cause = Some(cause);
                }
                TraceEvent::MdiskPurged { id } => {
                    self.mdisk_entry(*id).state = MdiskState::Purged;
                }
                TraceEvent::MdiskRegenerated { id, level } => {
                    let level = *level;
                    let m = self.mdisk_entry(*id);
                    m.regen_level = Some(level);
                    m.state = MdiskState::Active;
                }
                TraceEvent::DeviceDied { cause } => {
                    self.died_at = Some(rec.time);
                    self.death_cause = Some(*cause);
                }
                TraceEvent::GcPass { .. } => {
                    let bucket = self.unit.tick(rec.time) / self.gc_bucket_ticks;
                    match gc_bucket {
                        Some(b) if b == bucket => gc_count += 1,
                        Some(b) => {
                            self.close_gc_buckets(b, bucket, gc_count);
                            gc_bucket = Some(bucket);
                            gc_count = 1;
                        }
                        None => {
                            gc_bucket = Some(bucket);
                            gc_count = 1;
                        }
                    }
                }
                _ => {}
            }
        }
        if let (Some(b), true) = (gc_bucket, gc_count > 0) {
            self.close_gc_buckets(b, b + 1, gc_count);
        }
        for m in self.mdisks.values_mut() {
            m.rescore();
        }
    }

    /// Feed the completed GC bucket `from` (with `count` passes) and
    /// any empty buckets up to `to` into the spike detector. Zero-fill
    /// is capped at one window's worth: 16 zeros already flat-line the
    /// rolling window, and op-clock gaps can span millions of buckets.
    fn close_gc_buckets(&mut self, from: u64, to: u64, count: u64) {
        self.observe_gc_bucket(from, count);
        let gap_end = to.min(from + 1 + 16);
        for empty in from + 1..gap_end {
            self.observe_gc_bucket(empty, 0);
        }
    }

    fn observe_gc_bucket(&mut self, bucket: u64, count: u64) {
        if let Some(dev) = self.gc_detector.observe(count as f64) {
            self.anomalies.push(Anomaly {
                time: self.unit.time(bucket * self.gc_bucket_ticks),
                kind: AnomalyKind::GcRateSpike,
                subject: DEVICE_SUBJECT,
                value_milli: to_milli(count as f64),
                mean_milli: to_milli(dev.mean),
                z_milli: to_milli(dev.z),
            });
        }
    }

    fn mdisk_entry(&mut self, id: u32) -> &mut MdiskHealth {
        self.mdisks
            .entry(id)
            .or_insert_with(|| MdiskHealth::new(id))
    }

    /// Produce the report. The device score blends remaining life
    /// (50%), headroom fraction (30%), and read-path integrity (20%) —
    /// the model DESIGN.md §11 defines.
    pub fn report(&self) -> HealthReport {
        let (score, headroom, life) = match &self.last {
            None => (0, 0, 0.0),
            Some(s) => {
                let life = s.life_remaining.clamp(0.0, 1.0);
                let headroom_frac = if s.usable_opages > 0 {
                    (s.headroom_opages as f64 / s.usable_opages as f64).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let integrity =
                    1.0 / (1.0 + s.read_retries as f64 / 1000.0 + s.uncorrectable_reads as f64);
                let score = (100.0 * (0.5 * life + 0.3 * headroom_frac + 0.2 * integrity)).round();
                (score as u32, s.headroom_opages, life)
            }
        };
        HealthReport {
            unit: self.unit,
            samples: self.samples,
            score,
            headroom_opages: headroom,
            life_remaining: life,
            headroom_rate: self.forecaster.headroom_rate(),
            life_rate: self.forecaster.life_rate(),
            level_rates: self.forecaster.level_rates(),
            ticks_to_next_shrink: self.forecaster.ticks_to_next_shrink(),
            ticks_to_death: self.forecaster.ticks_to_death(),
            died_at: self.died_at,
            death_cause: self.death_cause,
            mdisks: self.mdisks.values().cloned().collect(),
            anomalies: self.anomalies.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smart(headroom: u64, life: f64, retries: u64) -> SmartReport {
        SmartReport {
            avg_pec: 10.0,
            max_pec: 20,
            level_histogram: [100, 0, 0, 0, 0],
            dead_blocks: 0,
            usable_opages: 1000,
            committed_lbas: 600,
            draining_lbas: 0,
            headroom_opages: headroom,
            pages_near_retirement: 0,
            opages_per_fpage: 4,
            uncorrectable_reads: 0,
            read_retries: retries,
            life_remaining: life,
        }
    }

    #[test]
    fn fresh_device_scores_high_and_projects_nothing() {
        let mut mon = HealthMonitor::new(HealthUnit::Ops, 10_000);
        mon.observe(0, &smart(400, 1.0, 0));
        let r = mon.report();
        assert!(r.score >= 80, "score {}", r.score);
        assert_eq!(r.ticks_to_next_shrink, None);
        assert_eq!(r.ticks_to_death, None);
        assert_eq!(r.samples, 1);
    }

    #[test]
    fn wearing_device_projects_shrink_and_death() {
        let mut mon = HealthMonitor::new(HealthUnit::Ops, 10_000);
        for i in 0..5u64 {
            mon.observe(i * 1000, &smart(400 - i * 40, 1.0 - i as f64 * 0.05, 0));
        }
        let r = mon.report();
        let shrink = r.ticks_to_next_shrink.expect("headroom declining");
        let death = r.ticks_to_death.expect("life declining");
        assert!(shrink > 0 && death > 0);
        // 240 oPages left at 0.04/tick ⇒ 6000 ticks.
        assert_eq!(shrink, 6000);
        assert!(death >= shrink, "death {death} vs shrink {shrink}");
        assert!(r.score < 100);
    }

    #[test]
    fn retry_burst_flags_device_anomaly() {
        let mut mon = HealthMonitor::new(HealthUnit::Ops, 10_000);
        let mut total = 0u64;
        for i in 0..12u64 {
            total += 1; // steady 1 retry per sample
            mon.observe(i * 1000, &smart(400, 1.0, total));
        }
        total += 500; // burst
        mon.observe(12_000, &smart(400, 1.0, total));
        let r = mon.report();
        assert!(
            r.anomalies
                .iter()
                .any(|a| a.kind == AnomalyKind::ReadRetryBurst && a.subject == DEVICE_SUBJECT),
            "{:?}",
            r.anomalies
        );
    }

    fn rec(seq: u64, op: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq,
            time: SimTime::new(0, op),
            event,
        }
    }

    #[test]
    fn trace_reconstructs_mdisk_lifecycle_and_scores() {
        let mut mon = HealthMonitor::new(HealthUnit::Ops, 1000);
        let records = vec![
            rec(
                0,
                10,
                TraceEvent::ReadRetry {
                    mdisk: 3,
                    retries: 2,
                },
            ),
            rec(
                1,
                20,
                TraceEvent::MdiskDecommissioned {
                    id: 3,
                    valid_lbas: 50,
                    draining: true,
                    cause: DecommissionCause::LevelShortfall,
                },
            ),
            rec(2, 30, TraceEvent::MdiskPurged { id: 3 }),
            rec(3, 40, TraceEvent::MdiskRegenerated { id: 7, level: 1 }),
            rec(
                4,
                41,
                TraceEvent::ReadRetry {
                    mdisk: 7,
                    retries: 1,
                },
            ),
            rec(
                5,
                50,
                TraceEvent::DeviceDied {
                    cause: DeathCause::FullyShrunk,
                },
            ),
        ];
        mon.ingest_trace(&records);
        let r = mon.report();
        assert_eq!(r.mdisks.len(), 2);
        let m3 = &r.mdisks[0];
        assert_eq!(m3.id, 3);
        assert_eq!(m3.state, MdiskState::Purged);
        assert_eq!(m3.score, 0);
        assert_eq!(m3.read_retries, 2);
        assert_eq!(
            m3.decommission_cause,
            Some(DecommissionCause::LevelShortfall)
        );
        assert_eq!(m3.decommissioned_at, Some(SimTime::new(0, 20)));
        let m7 = &r.mdisks[1];
        assert_eq!(m7.state, MdiskState::Active);
        assert_eq!(m7.regen_level, Some(1));
        assert_eq!(m7.score, 100 - 5 - 2, "regen discount + retry penalty");
        assert_eq!(r.died_at, Some(SimTime::new(0, 50)));
        assert_eq!(r.death_cause, Some(DeathCause::FullyShrunk));
    }

    #[test]
    fn gc_spike_flags_after_steady_state() {
        let mut mon = HealthMonitor::new(HealthUnit::Ops, 100);
        let mut records = Vec::new();
        let mut seq = 0;
        // 12 buckets of 2 passes each, then one bucket of 60.
        for bucket in 0..12u64 {
            for i in 0..2 {
                records.push(rec(
                    seq,
                    bucket * 100 + i * 7,
                    TraceEvent::GcPass {
                        block: seq,
                        relocated: 4,
                    },
                ));
                seq += 1;
            }
        }
        for i in 0..60u64 {
            records.push(rec(
                seq,
                1200 + i,
                TraceEvent::GcPass {
                    block: seq,
                    relocated: 4,
                },
            ));
            seq += 1;
        }
        mon.ingest_trace(&records);
        let r = mon.report();
        assert!(
            r.anomalies
                .iter()
                .any(|a| a.kind == AnomalyKind::GcRateSpike),
            "{:?}",
            r.anomalies
        );
    }

    #[test]
    fn report_round_trips_and_gauges_export() {
        let mut mon = HealthMonitor::new(HealthUnit::Days, 7);
        for i in 0..4u64 {
            mon.observe(i * 7, &smart(400 - i * 20, 1.0 - i as f64 * 0.01, i));
        }
        let r = mon.report();
        let json = serde_json::to_string(&r).unwrap();
        let back: HealthReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);

        let metrics = MetricsHandle::enabled();
        r.export_gauges(&metrics);
        let reg = metrics.take();
        assert_eq!(reg.gauge("salamander_health_score"), Some(r.score as f64));
        assert!(reg
            .gauge("salamander_health_ticks_to_next_shrink")
            .is_some());
        assert!(reg
            .gauge("salamander_health_level_rate{level=\"L4\"}")
            .is_some());
    }

    #[test]
    fn disabled_metrics_export_is_inert() {
        let r = HealthReport::default();
        r.export_gauges(&MetricsHandle::disabled());
    }
}
