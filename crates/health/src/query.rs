//! Offline trace queries: the engine behind `obsctl` (DESIGN.md §11).
//!
//! Every query renders recorded telemetry to a `String` through one
//! deterministic path shared by the CLI, the examples, and the golden
//! tests. Queries accept either a flat record slice (JSONL traces) or
//! an indexed `.strc` reader: in the indexed form, chunks whose
//! [`ChunkSummary`] proves they contain nothing the query would print
//! are *never decoded* — their aggregate counts fold into the totals
//! straight from the footer index.

use salamander_obs::cluster::exposure_upper_ticks;
use salamander_obs::latency::fmt_ns;
use salamander_obs::rollup::percentile_permille;
use salamander_obs::strc::{ChunkSummary, EventKind, StrcError, StrcReader};
use salamander_obs::{
    ClusterRollup, DecommissionCause, FleetRollup, LatencyRollup, TraceEvent, TraceRecord,
    DIST_NAMES, EXPOSURE_STATS, LAT_CLASSES, LAT_STATS, PERCENTILES,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One run segment of a trace: the label of the `RunMarker` that opened
/// it and the records that follow (markers excluded).
#[derive(Debug, Clone)]
pub struct Segment<'a> {
    /// Run label (`"(unlabelled)"` for records before any marker).
    pub label: String,
    /// Records in emission order.
    pub records: Vec<&'a TraceRecord>,
}

/// Split a trace on `RunMarker` boundaries. A trace without markers is
/// one anonymous segment; an empty trace has no segments.
pub fn segments(records: &[TraceRecord]) -> Vec<Segment<'_>> {
    let mut out: Vec<Segment<'_>> = Vec::new();
    for r in records {
        match &r.event {
            TraceEvent::RunMarker { label } => out.push(Segment {
                label: label.clone(),
                records: Vec::new(),
            }),
            _ => {
                if out.is_empty() {
                    out.push(Segment {
                        label: "(unlabelled)".into(),
                        records: Vec::new(),
                    });
                }
                out.last_mut().expect("segment exists").records.push(r);
            }
        }
    }
    out
}

/// What an indexed reader hands a query per chunk: the decoded records
/// when the chunk may matter, or just its summary when the index proves
/// it cannot contain anything the query would print line-by-line.
#[derive(Debug, Clone)]
pub enum TraceChunk {
    /// Decoded records, in emission order.
    Records(Vec<TraceRecord>),
    /// A chunk skipped via the index: aggregate counts only.
    Skipped(Box<ChunkSummary>),
}

/// One unit of query input: a single record, or a whole skipped chunk
/// standing in for its records.
#[derive(Clone, Copy)]
enum Item<'a> {
    Rec(&'a TraceRecord),
    Sum(&'a ChunkSummary),
}

impl Item<'_> {
    /// Records this item stands for.
    fn records(&self) -> u64 {
        match self {
            Item::Rec(_) => 1,
            Item::Sum(s) => s.records as u64,
        }
    }
}

/// Flatten a chunk list into query items.
fn chunk_items(chunks: &[TraceChunk]) -> Vec<Item<'_>> {
    let mut out = Vec::new();
    for c in chunks {
        match c {
            TraceChunk::Records(rs) => out.extend(rs.iter().map(Item::Rec)),
            TraceChunk::Skipped(s) => out.push(Item::Sum(s.as_ref())),
        }
    }
    out
}

/// A run segment over items (see [`Segment`] for the record form).
/// Skipped chunks never hold a `RunMarker` (markers are always in the
/// decode set), so each lies entirely within one segment.
struct ItemSegment<'a> {
    label: String,
    items: Vec<Item<'a>>,
}

fn item_segments<'a>(items: &[Item<'a>]) -> Vec<ItemSegment<'a>> {
    let mut out: Vec<ItemSegment<'a>> = Vec::new();
    for &it in items {
        if let Item::Rec(r) = it {
            if let TraceEvent::RunMarker { label } = &r.event {
                out.push(ItemSegment {
                    label: label.clone(),
                    items: Vec::new(),
                });
                continue;
            }
        }
        if out.is_empty() {
            out.push(ItemSegment {
                label: "(unlabelled)".into(),
                items: Vec::new(),
            });
        }
        out.last_mut().expect("segment exists").items.push(it);
    }
    out
}

/// Read an indexed trace, decoding only chunks that may contain a kind
/// in `decode_mask` — or, with `id_filter = Some((mask, id))`, chunks
/// that may contain a `mask` kind concerning `id` (bloom test; false
/// positives decode harmlessly, false negatives cannot happen).
pub fn load_chunks(
    reader: &mut StrcReader,
    decode_mask: u32,
    id_filter: Option<(u32, u64)>,
) -> Result<Vec<TraceChunk>, StrcError> {
    let n = reader.chunk_count();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let s = reader.summaries()[i].clone();
        let wanted = s.may_contain_kinds(decode_mask)
            || id_filter.is_some_and(|(mask, id)| s.may_contain_kinds(mask) && s.may_concern(id));
        out.push(if wanted {
            TraceChunk::Records(reader.read_chunk(i)?)
        } else {
            TraceChunk::Skipped(Box::new(s))
        });
    }
    Ok(out)
}

/// Kinds [`lifecycle`] prints as individual lines. Chunks containing
/// any of these must be decoded; all others fold in via summaries.
pub fn lifecycle_decode_mask() -> u32 {
    EventKind::mask(&[
        EventKind::RunMarker,
        EventKind::MdiskDecommissioned,
        EventKind::MdiskPurged,
        EventKind::MdiskRegenerated,
        EventKind::DeviceDied,
        EventKind::FleetDeviceDied,
        EventKind::ChunkLost,
        EventKind::UncorrectableRead,
    ])
}

/// Kinds [`why`] prints or anchors on (the read-path pressure for the
/// target minidisk is pulled in separately via the id bloom).
pub fn why_decode_mask() -> u32 {
    EventKind::mask(&[
        EventKind::RunMarker,
        EventKind::MdiskDecommissioned,
        EventKind::MdiskPurged,
        EventKind::MdiskRegenerated,
        EventKind::DeviceDied,
    ])
}

/// The per-minidisk read-path kinds [`why`] sums for its target.
pub fn read_path_mask() -> u32 {
    EventKind::mask(&[EventKind::ReadRetry, EventKind::UncorrectableRead])
}

/// Kinds [`fleet_rollup`] prints per-event (losses and re-replication
/// volumes are pure counts, served by the index).
pub fn fleet_decode_mask() -> u32 {
    EventKind::mask(&[EventKind::FleetDeviceDied])
}

/// Whether an event concerns minidisk `id` (lifecycle or read path).
fn concerns(event: &TraceEvent, id: u32) -> bool {
    match event {
        TraceEvent::MdiskDecommissioned { id: m, .. }
        | TraceEvent::MdiskPurged { id: m }
        | TraceEvent::MdiskRegenerated { id: m, .. } => *m == id,
        TraceEvent::ReadRetry { mdisk, .. } | TraceEvent::UncorrectableRead { mdisk, .. } => {
            *mdisk == id
        }
        _ => false,
    }
}

/// Render the lifecycle timeline of a trace: per segment, every
/// minidisk decommission/purge/regeneration, device deaths, chunk
/// losses, and totals for the high-volume events. With `mdisk`, only
/// lines concerning that minidisk (totals still cover the segment).
pub fn lifecycle(records: &[TraceRecord], mdisk: Option<u32>) -> String {
    let items: Vec<Item<'_>> = records.iter().map(Item::Rec).collect();
    lifecycle_items(&items, mdisk)
}

/// [`lifecycle`] over an indexed chunk list (see [`load_chunks`]).
pub fn lifecycle_chunks(chunks: &[TraceChunk], mdisk: Option<u32>) -> String {
    lifecycle_items(&chunk_items(chunks), mdisk)
}

/// [`lifecycle`] over a `.strc` reader: decodes only chunks that may
/// contain a printable event, folding the rest in from the index.
pub fn lifecycle_strc(reader: &mut StrcReader, mdisk: Option<u32>) -> Result<String, StrcError> {
    let chunks = load_chunks(reader, lifecycle_decode_mask(), None)?;
    Ok(lifecycle_chunks(&chunks, mdisk))
}

fn lifecycle_items(items: &[Item<'_>], mdisk: Option<u32>) -> String {
    let mut out = String::new();
    let total: u64 = items.iter().map(Item::records).sum();
    if total == 0 {
        out.push_str("empty trace\n");
        return out;
    }
    let segs = item_segments(items);
    let _ = writeln!(out, "{total} events, {} run segment(s)", segs.len());
    for seg in &segs {
        let seg_events: u64 = seg.items.iter().map(Item::records).sum();
        let _ = writeln!(out, "\n== {} ({seg_events} events)", seg.label);
        let mut tired = 0u64;
        let mut retired = 0u64;
        let mut gc_passes = 0u64;
        let mut gc_relocated = 0u64;
        let mut scrubs = 0u64;
        let mut retries = 0u64;
        let mut rereplicated = 0u64;
        for it in &seg.items {
            let r = match it {
                Item::Sum(s) => {
                    // A skipped chunk holds only high-volume events;
                    // its summary feeds the totals exactly.
                    tired += s.count(EventKind::PageTired);
                    retired += s.count(EventKind::PageRetired);
                    gc_passes += s.count(EventKind::GcPass);
                    gc_relocated += s.gc_relocated;
                    scrubs += s.count(EventKind::ScrubRefresh);
                    retries += s.count(EventKind::ReadRetry);
                    rereplicated += s.rerep_bytes;
                    continue;
                }
                Item::Rec(r) => r,
            };
            let day = r.time.day;
            if let Some(id) = mdisk {
                if !concerns(&r.event, id) && !matches!(r.event, TraceEvent::DeviceDied { .. }) {
                    // Totals below still count the whole segment.
                    match &r.event {
                        TraceEvent::PageTired { .. } => tired += 1,
                        TraceEvent::PageRetired { .. } => retired += 1,
                        TraceEvent::GcPass { relocated, .. } => {
                            gc_passes += 1;
                            gc_relocated += relocated;
                        }
                        TraceEvent::ScrubRefresh { .. } => scrubs += 1,
                        TraceEvent::ReadRetry { .. } => retries += 1,
                        TraceEvent::ChunkReReplicated { bytes, .. } => rereplicated += bytes,
                        _ => {}
                    }
                    continue;
                }
            }
            match &r.event {
                TraceEvent::MdiskDecommissioned {
                    id,
                    valid_lbas,
                    draining,
                    cause,
                } => {
                    let _ = writeln!(
                        out,
                        "  day {day:>5}: minidisk {id} decommissioned \
                         ({valid_lbas} valid LBAs, {}, cause: {cause:?})",
                        if *draining { "draining" } else { "dropped" }
                    );
                }
                TraceEvent::MdiskPurged { id } => {
                    let _ = writeln!(out, "  day {day:>5}: minidisk {id} purged before ack");
                }
                TraceEvent::MdiskRegenerated { id, level } => {
                    let _ = writeln!(out, "  day {day:>5}: minidisk {id} regenerated at L{level}");
                }
                TraceEvent::DeviceDied { cause } => {
                    let _ = writeln!(out, "  day {day:>5}: device died ({cause:?})");
                }
                TraceEvent::FleetDeviceDied { device, cause } => {
                    let _ = writeln!(
                        out,
                        "  day {day:>5}: fleet device {device} died ({cause:?})"
                    );
                }
                TraceEvent::ChunkLost { chunk } => {
                    let _ = writeln!(out, "  day {day:>5}: chunk {chunk} LOST");
                }
                TraceEvent::UncorrectableRead { mdisk, lba } => {
                    let _ = writeln!(
                        out,
                        "  day {day:>5}: uncorrectable read (minidisk {mdisk}, lba {lba})"
                    );
                }
                TraceEvent::PageTired { .. } => tired += 1,
                TraceEvent::PageRetired { .. } => retired += 1,
                TraceEvent::GcPass { relocated, .. } => {
                    gc_passes += 1;
                    gc_relocated += relocated;
                }
                TraceEvent::ScrubRefresh { .. } => scrubs += 1,
                TraceEvent::ReadRetry { .. } => retries += 1,
                TraceEvent::ChunkReReplicated { bytes, .. } => rereplicated += bytes,
                TraceEvent::RunMarker { .. }
                | TraceEvent::FleetRollup(_)
                | TraceEvent::LatencyRollup(_)
                | TraceEvent::ClusterRollup(_) => {}
            }
        }
        let _ = writeln!(
            out,
            "  totals: {tired} level transitions, {retired} page retirements, \
             {gc_passes} GC passes ({gc_relocated} oPages relocated), \
             {scrubs} scrub refreshes, {retries} read retries"
        );
        if rereplicated > 0 {
            let _ = writeln!(
                out,
                "  totals: {rereplicated} bytes re-replicated by the diFS"
            );
        }
    }
    out
}

/// Human text for a decommission cause.
fn cause_text(cause: DecommissionCause) -> &'static str {
    match cause {
        DecommissionCause::LevelShortfall => {
            "a tiredness level's committed ledger exceeded its usable pages \
             (wear transitions shrank the level faster than GC could drain it)"
        }
        DecommissionCause::GcHeadroom => {
            "global GC headroom dropped below the overprovisioning floor \
             (Eq. 1: usable − committed − draining − reserve)"
        }
    }
}

/// Explain *why* a minidisk was decommissioned: its decommission event,
/// the wear pressure recorded before it (level transitions, retirements,
/// GC activity, this minidisk's read retries), and the aftermath (purge,
/// replacement regenerations, device death). With `mdisk = None`, the
/// first decommissioned minidisk in the trace is explained.
pub fn why(records: &[TraceRecord], mdisk: Option<u32>) -> String {
    let items: Vec<Item<'_>> = records.iter().map(Item::Rec).collect();
    why_items(&items, mdisk)
}

/// [`why`] over an indexed chunk list (see [`load_chunks`]).
pub fn why_chunks(chunks: &[TraceChunk], mdisk: Option<u32>) -> String {
    why_items(&chunk_items(chunks), mdisk)
}

/// [`why`] over a `.strc` reader. Lifecycle-anchor chunks decode via
/// the kind mask; the target minidisk's read-path chunks decode via
/// the id bloom (resolved in a first pass when `mdisk` is `None`);
/// everything else — the bulk wear pressure — comes from the index.
pub fn why_strc(reader: &mut StrcReader, mdisk: Option<u32>) -> Result<String, StrcError> {
    let base = load_chunks(reader, why_decode_mask(), None)?;
    let target = mdisk.or_else(|| first_decommissioned_id(&base));
    let chunks = match target {
        Some(id) => load_chunks(
            reader,
            why_decode_mask(),
            Some((read_path_mask(), id as u64)),
        )?,
        None => base,
    };
    Ok(why_chunks(&chunks, mdisk))
}

/// First minidisk decommissioned in a decoded chunk list, if any.
fn first_decommissioned_id(chunks: &[TraceChunk]) -> Option<u32> {
    for c in chunks {
        if let TraceChunk::Records(rs) = c {
            for r in rs {
                if let TraceEvent::MdiskDecommissioned { id, .. } = &r.event {
                    return Some(*id);
                }
            }
        }
    }
    None
}

fn why_items(items: &[Item<'_>], mdisk: Option<u32>) -> String {
    let mut out = String::new();
    // Locate the decommission record (and its segment).
    let segs = item_segments(items);
    let mut found: Option<(&ItemSegment<'_>, usize)> = None;
    'outer: for seg in &segs {
        for (i, it) in seg.items.iter().enumerate() {
            if let Item::Rec(r) = it {
                if let TraceEvent::MdiskDecommissioned { id, .. } = &r.event {
                    if mdisk.is_none() || mdisk == Some(*id) {
                        found = Some((seg, i));
                        break 'outer;
                    }
                }
            }
        }
    }
    let Some((seg, idx)) = found else {
        match mdisk {
            Some(id) => {
                let _ = writeln!(out, "minidisk {id} was never decommissioned in this trace");
                let mut ids: Vec<u32> = Vec::new();
                for it in items {
                    if let Item::Rec(r) = it {
                        if let TraceEvent::MdiskDecommissioned { id, .. } = &r.event {
                            if !ids.contains(id) {
                                ids.push(*id);
                            }
                        }
                    }
                }
                if ids.is_empty() {
                    out.push_str("no minidisk was decommissioned at all\n");
                } else {
                    let _ = writeln!(out, "decommissioned minidisks: {ids:?}");
                }
            }
            None => out.push_str("no minidisk was decommissioned in this trace\n"),
        }
        return out;
    };
    let Item::Rec(rec) = seg.items[idx] else {
        unreachable!("found index points at a record");
    };
    let TraceEvent::MdiskDecommissioned {
        id,
        valid_lbas,
        draining,
        cause,
    } = &rec.event
    else {
        unreachable!("found index points at a decommission");
    };
    let _ = writeln!(out, "why: minidisk {id} (segment \"{}\")", seg.label);
    let _ = writeln!(
        out,
        "  day {:>5} op {:>8}: decommissioned, {} valid LBAs, {}",
        rec.time.day,
        rec.time.op,
        valid_lbas,
        if *draining {
            "entered draining grace period"
        } else {
            "dropped immediately"
        }
    );
    let _ = writeln!(out, "  cause: {:?} — {}", cause, cause_text(*cause));

    // Wear pressure recorded before the decommission, within the segment.
    let mut transitions: BTreeMap<(u8, u8), u64> = BTreeMap::new();
    let mut retired = 0u64;
    let mut gc_passes = 0u64;
    let mut gc_relocated = 0u64;
    let mut own_retries = 0u64;
    let mut own_uncorrectable = 0u64;
    for it in &seg.items[..idx] {
        let r = match it {
            Item::Sum(s) => {
                // Skipped chunks carry the bulk wear pressure in their
                // summaries; the target's read path is never in one
                // (its chunks decode via the id bloom).
                for from in 0u8..5 {
                    for to in 0u8..5 {
                        let n = s.transitions[from as usize * 5 + to as usize] as u64;
                        if n > 0 {
                            *transitions.entry((from, to)).or_insert(0) += n;
                        }
                    }
                }
                retired += s.count(EventKind::PageRetired);
                gc_passes += s.count(EventKind::GcPass);
                gc_relocated += s.gc_relocated;
                continue;
            }
            Item::Rec(r) => r,
        };
        match &r.event {
            TraceEvent::PageTired { from, to, .. } => {
                *transitions.entry((*from, *to)).or_insert(0) += 1;
            }
            TraceEvent::PageRetired { .. } => retired += 1,
            TraceEvent::GcPass { relocated, .. } => {
                gc_passes += 1;
                gc_relocated += relocated;
            }
            TraceEvent::ReadRetry { mdisk, retries } if *mdisk == *id => {
                own_retries += *retries as u64;
            }
            TraceEvent::UncorrectableRead { mdisk, .. } if *mdisk == *id => {
                own_uncorrectable += 1;
            }
            _ => {}
        }
    }
    out.push_str("  pressure before the decommission:\n");
    if transitions.is_empty() && retired == 0 {
        out.push_str("    no page wear recorded\n");
    } else {
        if transitions.is_empty() {
            out.push_str("    page level transitions: 0\n");
        } else {
            let flows: Vec<String> = transitions
                .iter()
                .map(|((f, t), n)| format!("L{f}→L{t}: {n}"))
                .collect();
            let _ = writeln!(
                out,
                "    page level transitions: {} ({})",
                transitions.values().sum::<u64>(),
                flows.join(", ")
            );
        }
        let _ = writeln!(out, "    page retirements: {retired}");
    }
    let _ = writeln!(
        out,
        "    GC passes: {gc_passes} ({gc_relocated} oPages relocated)"
    );
    let _ = writeln!(
        out,
        "    this minidisk's read path: {own_retries} retries, \
         {own_uncorrectable} uncorrectable reads"
    );

    // Aftermath: what happened to this minidisk and the device after.
    out.push_str("  aftermath:\n");
    let mut any = false;
    for it in &seg.items[idx + 1..] {
        let Item::Rec(r) = it else {
            // Aftermath events are all in the decode set.
            continue;
        };
        let day = r.time.day;
        let op = r.time.op;
        match &r.event {
            TraceEvent::MdiskPurged { id: m } if *m == *id => {
                let _ = writeln!(out, "    day {day:>5} op {op:>8}: purged before ack");
                any = true;
            }
            TraceEvent::MdiskRegenerated { id: m, level } => {
                let _ = writeln!(
                    out,
                    "    day {day:>5} op {op:>8}: minidisk {m} regenerated at L{level} \
                     (replacement capacity)"
                );
                any = true;
            }
            TraceEvent::DeviceDied { cause } => {
                let _ = writeln!(out, "    day {day:>5} op {op:>8}: device died ({cause:?})");
                any = true;
            }
            _ => {}
        }
    }
    if !any {
        out.push_str("    none recorded (still draining at end of trace)\n");
    }
    out
}

/// Fleet rollup: per-device death day and cause plus chunk-durability
/// totals, as an aligned table or CSV (`device,died_day,cause`).
pub fn fleet_rollup(records: &[TraceRecord], csv: bool) -> String {
    let items: Vec<Item<'_>> = records.iter().map(Item::Rec).collect();
    fleet_rollup_items(&items, csv)
}

/// [`fleet_rollup`] over an indexed chunk list (see [`load_chunks`]).
pub fn fleet_rollup_chunks(chunks: &[TraceChunk], csv: bool) -> String {
    fleet_rollup_items(&chunk_items(chunks), csv)
}

/// [`fleet_rollup`] over a `.strc` reader: only chunks with device
/// deaths decode; loss and re-replication totals come from the index.
pub fn fleet_rollup_strc(reader: &mut StrcReader, csv: bool) -> Result<String, StrcError> {
    let chunks = load_chunks(reader, fleet_decode_mask(), None)?;
    Ok(fleet_rollup_chunks(&chunks, csv))
}

fn fleet_rollup_items(items: &[Item<'_>], csv: bool) -> String {
    let mut out = String::new();
    let mut deaths: Vec<(u32, u32, String)> = Vec::new();
    let mut lost = 0u64;
    let mut rereplicated = 0u64;
    for it in items {
        let r = match it {
            Item::Sum(s) => {
                lost += s.count(EventKind::ChunkLost);
                rereplicated += s.rerep_bytes;
                continue;
            }
            Item::Rec(r) => r,
        };
        match &r.event {
            TraceEvent::FleetDeviceDied { device, cause } => {
                deaths.push((*device, r.time.day, format!("{cause:?}")));
            }
            TraceEvent::ChunkLost { .. } => lost += 1,
            TraceEvent::ChunkReReplicated { bytes, .. } => rereplicated += bytes,
            _ => {}
        }
    }
    deaths.sort();
    if csv {
        out.push_str("device,died_day,cause\n");
        for (device, day, cause) in &deaths {
            let _ = writeln!(out, "{device},{day},{cause}");
        }
        return out;
    }
    if deaths.is_empty() {
        out.push_str("no fleet device deaths recorded\n");
    } else {
        let _ = writeln!(out, "{:>8} {:>9} {:<6}", "device", "died_day", "cause");
        for (device, day, cause) in &deaths {
            let _ = writeln!(out, "{device:>8} {day:>9} {cause:<6}");
        }
    }
    let _ = writeln!(
        out,
        "totals: {} device deaths, {lost} chunks lost, \
         {rereplicated} bytes re-replicated",
        deaths.len()
    );
    out
}

/// Kinds the rollup-series queries ([`fleet_timeline`], [`percentiles`],
/// [`drill`]) print: run markers and the per-day rollups themselves.
/// Every other chunk — including the high-volume wear/GC noise and the
/// death events — is skipped outright.
pub fn rollup_series_decode_mask() -> u32 {
    EventKind::mask(&[EventKind::RunMarker, EventKind::FleetRollup])
}

/// The per-day rollups of one segment, in emission (chronological)
/// order.
fn seg_rollups<'a>(seg: &ItemSegment<'a>) -> Vec<&'a FleetRollup> {
    seg.items
        .iter()
        .filter_map(|it| match it {
            Item::Rec(r) => match &r.event {
                TraceEvent::FleetRollup(ru) => Some(ru),
                _ => None,
            },
            Item::Sum(_) => None,
        })
        .collect()
}

/// Fleet timeline: one line per sampled day and segment from the
/// recorded [`FleetRollup`] series — population counts, committed
/// capacity, and the wear/health medians (permille bucket upper edge).
pub fn fleet_timeline(records: &[TraceRecord]) -> String {
    let items: Vec<Item<'_>> = records.iter().map(Item::Rec).collect();
    fleet_timeline_items(&items)
}

/// [`fleet_timeline`] over an indexed chunk list (see [`load_chunks`]).
pub fn fleet_timeline_chunks(chunks: &[TraceChunk]) -> String {
    fleet_timeline_items(&chunk_items(chunks))
}

/// [`fleet_timeline`] over a `.strc` reader: only chunks that may hold
/// a rollup (or marker) decode.
pub fn fleet_timeline_strc(reader: &mut StrcReader) -> Result<String, StrcError> {
    let chunks = load_chunks(reader, rollup_series_decode_mask(), None)?;
    Ok(fleet_timeline_chunks(&chunks))
}

fn fleet_timeline_items(items: &[Item<'_>]) -> String {
    let mut out = String::new();
    let mut any = false;
    for seg in &item_segments(items) {
        let rollups = seg_rollups(seg);
        if rollups.is_empty() {
            continue;
        }
        any = true;
        let _ = writeln!(out, "== {} ({} sampled days)", seg.label, rollups.len());
        let _ = writeln!(
            out,
            "  {:>6} {:>8} {:>10} {:>9} {:>7} {:>16} {:>10} {:>12}",
            "day",
            "alive",
            "dead_wear",
            "dead_afr",
            "dying",
            "capacity_opages",
            "wear_p50",
            "health_p50"
        );
        for r in rollups {
            let permille = |metric: &str| match r.series_value(metric) {
                Some(v) => format!("{v}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "  {:>6} {:>8} {:>10} {:>9} {:>7} {:>16} {:>10} {:>12}",
                r.day,
                r.alive,
                r.dead_wear,
                r.dead_afr,
                r.dying,
                r.capacity_opages,
                permille("wear_p50"),
                permille("health_p50"),
            );
        }
    }
    if !any {
        out.push_str("no fleet rollups recorded\n");
    }
    out
}

/// Percentile table for one rollup distribution (`wear`, `pec`,
/// `usable`, or `health`): per segment and sampled day, the exact
/// p1/p10/p50/p90/p99 bucket upper edges in permille. Unknown metrics
/// render a help line (the CLI validates before calling).
pub fn percentiles(records: &[TraceRecord], metric: &str) -> String {
    let items: Vec<Item<'_>> = records.iter().map(Item::Rec).collect();
    percentiles_items(&items, metric)
}

/// [`percentiles`] over an indexed chunk list (see [`load_chunks`]).
pub fn percentiles_chunks(chunks: &[TraceChunk], metric: &str) -> String {
    percentiles_items(&chunk_items(chunks), metric)
}

/// [`percentiles`] over a `.strc` reader: only rollup-bearing chunks
/// decode.
pub fn percentiles_strc(reader: &mut StrcReader, metric: &str) -> Result<String, StrcError> {
    let chunks = load_chunks(reader, rollup_series_decode_mask(), None)?;
    Ok(percentiles_chunks(&chunks, metric))
}

fn percentiles_items(items: &[Item<'_>], metric: &str) -> String {
    let mut out = String::new();
    if !DIST_NAMES.contains(&metric) {
        let _ = writeln!(
            out,
            "unknown distribution '{metric}' (expected one of {DIST_NAMES:?})"
        );
        return out;
    }
    let mut any = false;
    for seg in &item_segments(items) {
        let rollups = seg_rollups(seg);
        if rollups.is_empty() {
            continue;
        }
        any = true;
        let _ = writeln!(
            out,
            "== {} — {metric} distribution, permille bucket upper edges",
            seg.label
        );
        let _ = write!(out, "  {:>6}", "day");
        for q in PERCENTILES {
            let _ = write!(out, " {:>6}", format!("p{q}"));
        }
        out.push('\n');
        for r in rollups {
            let _ = write!(out, "  {:>6}", r.day);
            let bins = r.dist(metric).unwrap_or(&[]);
            for q in PERCENTILES {
                match percentile_permille(bins, q) {
                    Some(v) => {
                        let _ = write!(out, " {v:>6}");
                    }
                    None => {
                        let _ = write!(out, " {:>6}", "-");
                    }
                }
            }
            out.push('\n');
        }
    }
    if !any {
        out.push_str("no fleet rollups recorded\n");
    }
    out
}

/// Kinds the [`latency`] query prints: run markers and the per-day
/// latency rollups; everything else is skipped outright.
pub fn latency_decode_mask() -> u32 {
    EventKind::mask(&[EventKind::RunMarker, EventKind::LatencyRollup])
}

/// The per-day latency rollups of one segment, in emission order.
fn seg_latency_rollups<'a>(seg: &ItemSegment<'a>) -> Vec<&'a LatencyRollup> {
    seg.items
        .iter()
        .filter_map(|it| match it {
            Item::Rec(r) => match &r.event {
                TraceEvent::LatencyRollup(lr) => Some(lr),
                _ => None,
            },
            Item::Sum(_) => None,
        })
        .collect()
}

/// Tail-latency tables from the recorded [`LatencyRollup`] series: per
/// segment and op class, one line per sampled day with the exact count,
/// mean, and nearest-rank p50/p90/p99/p999 (log2-bucket upper edges, so
/// values are exact within the ≤12.5% quantization — DESIGN.md §15),
/// followed by the [`crate::fleet::latency_scan`] regression flags.
/// With `class`, only that class's table (validated against
/// [`LAT_CLASSES`]).
pub fn latency(records: &[TraceRecord], class: Option<&str>) -> String {
    let items: Vec<Item<'_>> = records.iter().map(Item::Rec).collect();
    latency_items(&items, class)
}

/// [`latency`] over an indexed chunk list (see [`load_chunks`]).
pub fn latency_chunks(chunks: &[TraceChunk], class: Option<&str>) -> String {
    latency_items(&chunk_items(chunks), class)
}

/// [`latency`] over a `.strc` reader: only chunks that may hold a
/// latency rollup (or marker) decode.
pub fn latency_strc(reader: &mut StrcReader, class: Option<&str>) -> Result<String, StrcError> {
    let chunks = load_chunks(reader, latency_decode_mask(), None)?;
    Ok(latency_chunks(&chunks, class))
}

fn latency_items(items: &[Item<'_>], class: Option<&str>) -> String {
    let mut out = String::new();
    if let Some(c) = class {
        if !LAT_CLASSES.contains(&c) {
            let _ = writeln!(
                out,
                "unknown latency class '{c}' (expected one of {LAT_CLASSES:?})"
            );
            return out;
        }
    }
    let mut any = false;
    for seg in &item_segments(items) {
        let rollups = seg_latency_rollups(seg);
        if rollups.is_empty() {
            continue;
        }
        any = true;
        let _ = writeln!(out, "== {} ({} sampled days)", seg.label, rollups.len());
        for name in LAT_CLASSES {
            if class.is_some_and(|c| c != name) {
                continue;
            }
            let populated = rollups
                .iter()
                .any(|r| r.class(name).is_some_and(|c| c.count > 0));
            if !populated {
                // Classes the run never charged (e.g. scrub with patrol
                // off) stay silent unless explicitly asked for.
                if class.is_some() {
                    let _ = writeln!(out, "  -- {name}: no samples recorded");
                }
                continue;
            }
            let _ = writeln!(out, "  -- {name}");
            let _ = write!(out, "    {:>6} {:>10} {:>12}", "day", "count", "mean");
            for (stat, _) in LAT_STATS {
                let _ = write!(out, " {stat:>12}");
            }
            out.push('\n');
            for r in &rollups {
                let Some(c) = r.class(name) else { continue };
                let _ = write!(out, "    {:>6} {:>10}", r.day, c.count);
                match c.mean_ns() {
                    Some(m) => {
                        let _ = write!(out, " {:>12}", fmt_ns(m));
                    }
                    None => {
                        let _ = write!(out, " {:>12}", "-");
                    }
                }
                for (_, q) in LAT_STATS {
                    match c.percentile(q) {
                        Some(v) => {
                            let _ = write!(out, " {:>12}", fmt_ns(v));
                        }
                        None => {
                            let _ = write!(out, " {:>12}", "-");
                        }
                    }
                }
                out.push('\n');
            }
        }
        let regressions = crate::fleet::latency_scan(rollups.iter().copied());
        if regressions.is_empty() {
            out.push_str("  no tail-latency regressions flagged\n");
        } else {
            out.push_str("  tail-latency regressions (day-over-day p99 z-scores):\n");
            for a in &regressions {
                let subject = LAT_CLASSES
                    .get(a.subject as usize)
                    .copied()
                    .unwrap_or("unknown");
                let _ = writeln!(
                    out,
                    "    day {:>5}: {:<10} p99 delta {} mean {} z {}",
                    a.time.day,
                    subject,
                    milli_text(a.value_milli),
                    milli_text(a.mean_milli),
                    milli_text(a.z_milli),
                );
            }
        }
    }
    if !any {
        out.push_str("no latency rollups recorded\n");
    }
    out
}

/// Kinds the [`cluster`] and [`exposure`] queries print: run markers
/// and the per-tick cluster rollups; everything else is skipped
/// outright.
pub fn cluster_decode_mask() -> u32 {
    EventKind::mask(&[EventKind::RunMarker, EventKind::ClusterRollup])
}

/// The per-tick cluster rollups of one segment, in emission order.
fn seg_cluster_rollups<'a>(seg: &ItemSegment<'a>) -> Vec<&'a ClusterRollup> {
    seg.items
        .iter()
        .filter_map(|it| match it {
            Item::Rec(r) => match &r.event {
                TraceEvent::ClusterRollup(cr) => Some(cr),
                _ => None,
            },
            Item::Sum(_) => None,
        })
        .collect()
}

/// Cluster durability timeline from the recorded [`ClusterRollup`]
/// series: per segment, one line per sampled tick with the replication
/// state counts, the recovery backlog, and the cumulative recovery
/// traffic split by cause (failure repair vs proactive drain), followed
/// by the [`crate::fleet::cluster_scan`] recovery-storm / data-loss
/// flags.
pub fn cluster(records: &[TraceRecord]) -> String {
    let items: Vec<Item<'_>> = records.iter().map(Item::Rec).collect();
    cluster_items(&items)
}

/// [`cluster`] over an indexed chunk list (see [`load_chunks`]).
pub fn cluster_chunks(chunks: &[TraceChunk]) -> String {
    cluster_items(&chunk_items(chunks))
}

/// [`cluster`] over a `.strc` reader: only chunks that may hold a
/// cluster rollup (or marker) decode.
pub fn cluster_strc(reader: &mut StrcReader) -> Result<String, StrcError> {
    let chunks = load_chunks(reader, cluster_decode_mask(), None)?;
    Ok(cluster_chunks(&chunks))
}

fn cluster_items(items: &[Item<'_>]) -> String {
    let mut out = String::new();
    let mut any = false;
    for seg in &item_segments(items) {
        let rollups = seg_cluster_rollups(seg);
        if rollups.is_empty() {
            continue;
        }
        any = true;
        let _ = writeln!(out, "== {} ({} sampled ticks)", seg.label, rollups.len());
        let _ = writeln!(
            out,
            "  {:>6} {:>8} {:>9} {:>9} {:>6} {:>9} {:>14} {:>13} {:>12}",
            "tick",
            "full",
            "degraded",
            "critical",
            "lost",
            "backlog",
            "backlog_bytes",
            "repair_bytes",
            "drain_bytes"
        );
        for r in &rollups {
            let _ = writeln!(
                out,
                "  {:>6} {:>8} {:>9} {:>9} {:>6} {:>9} {:>14} {:>13} {:>12}",
                r.day,
                r.full,
                r.degraded,
                r.critical,
                r.lost,
                r.backlog_chunks,
                r.backlog_bytes,
                r.repair_bytes,
                r.drain_bytes,
            );
        }
        let anomalies = crate::fleet::cluster_scan(rollups.iter().copied());
        if anomalies.is_empty() {
            out.push_str("  no recovery anomalies flagged\n");
        } else {
            out.push_str("  recovery anomalies (tick-over-tick z-scores):\n");
            for a in &anomalies {
                let _ = writeln!(
                    out,
                    "    tick {:>5}: {:<14} value {} mean {} z {}",
                    a.time.day,
                    a.kind.name(),
                    milli_text(a.value_milli),
                    milli_text(a.mean_milli),
                    milli_text(a.z_milli),
                );
            }
        }
    }
    if !any {
        out.push_str("no cluster rollups recorded\n");
    }
    out
}

/// Replication-exposure report from the final [`ClusterRollup`] of each
/// segment (the histogram is cumulative, so the last rollup carries the
/// whole run): closed-window count, nearest-rank dwell percentiles,
/// the non-empty log2 buckets, and the data still at risk in open
/// windows at the end of the run.
pub fn exposure(records: &[TraceRecord]) -> String {
    let items: Vec<Item<'_>> = records.iter().map(Item::Rec).collect();
    exposure_items(&items)
}

/// [`exposure`] over an indexed chunk list (see [`load_chunks`]).
pub fn exposure_chunks(chunks: &[TraceChunk]) -> String {
    exposure_items(&chunk_items(chunks))
}

/// [`exposure`] over a `.strc` reader: only chunks that may hold a
/// cluster rollup (or marker) decode.
pub fn exposure_strc(reader: &mut StrcReader) -> Result<String, StrcError> {
    let chunks = load_chunks(reader, cluster_decode_mask(), None)?;
    Ok(exposure_chunks(&chunks))
}

fn exposure_items(items: &[Item<'_>]) -> String {
    let mut out = String::new();
    let mut any = false;
    for seg in &item_segments(items) {
        let rollups = seg_cluster_rollups(seg);
        let Some(last) = rollups.last() else { continue };
        any = true;
        let _ = writeln!(
            out,
            "== {} — replication-exposure windows over {} sampled ticks",
            seg.label,
            rollups.len()
        );
        let _ = writeln!(out, "  windows closed: {}", last.exposure_windows);
        if last.exposure_windows > 0 {
            let _ = write!(out, "  dwell percentiles (ticks, bucket upper edges):");
            for (stat, q) in EXPOSURE_STATS {
                match last.exposure_percentile(q) {
                    Some(v) => {
                        let _ = write!(out, " {stat}<{v}");
                    }
                    None => {
                        let _ = write!(out, " {stat}=-");
                    }
                }
            }
            out.push('\n');
            let buckets: Vec<String> = last
                .exposure
                .iter()
                .enumerate()
                .filter(|(_, &b)| b > 0)
                .map(|(i, &b)| format!("<{}:{b}", exposure_upper_ticks(i)))
                .collect();
            let _ = writeln!(out, "  dwell buckets (ticks): {}", buckets.join(" "));
        }
        let _ = writeln!(
            out,
            "  open at end: {} chunks exposed, data at risk {} byte-ticks",
            last.degraded.saturating_add(last.critical),
            last.data_at_risk
        );
        let _ = writeln!(out, "  lost outright: {}", last.lost);
    }
    if !any {
        out.push_str("no cluster rollups recorded\n");
    }
    out
}

/// Kinds [`drill`] prints: run markers plus all three per-sample rollup
/// families (fleet, latency, cluster).
pub fn drill_decode_mask() -> u32 {
    EventKind::mask(&[
        EventKind::RunMarker,
        EventKind::FleetRollup,
        EventKind::LatencyRollup,
        EventKind::ClusterRollup,
    ])
}

/// Drill into one sampled day: the full rollup record (counts, all
/// four distributions with percentiles and non-empty buckets), the
/// day's tail-latency distributions when recorded, plus the top
/// anomalies flagged by [`crate::fleet::fleet_scan`] and
/// [`crate::fleet::latency_scan`] over the whole segment. Days without
/// a rollup list the sampled days instead of guessing.
pub fn drill(records: &[TraceRecord], day: u32) -> String {
    let items: Vec<Item<'_>> = records.iter().map(Item::Rec).collect();
    drill_items(&items, day)
}

/// [`drill`] over an indexed chunk list (see [`load_chunks`]).
pub fn drill_chunks(chunks: &[TraceChunk], day: u32) -> String {
    drill_items(&chunk_items(chunks), day)
}

/// [`drill`] over a `.strc` reader: only rollup-bearing chunks (fleet
/// or latency) decode.
pub fn drill_strc(reader: &mut StrcReader, day: u32) -> Result<String, StrcError> {
    let chunks = load_chunks(reader, drill_decode_mask(), None)?;
    Ok(drill_chunks(&chunks, day))
}

fn drill_items(items: &[Item<'_>], day: u32) -> String {
    let mut out = String::new();
    let mut any = false;
    for seg in &item_segments(items) {
        let rollups = seg_rollups(seg);
        let lat_rollups = seg_latency_rollups(seg);
        let cluster_rollups = seg_cluster_rollups(seg);
        if rollups.is_empty() && lat_rollups.is_empty() && cluster_rollups.is_empty() {
            continue;
        }
        any = true;
        let fleet_day = rollups.iter().find(|r| r.day == day);
        let lat_day = lat_rollups.iter().find(|r| r.day == day);
        let cluster_day = cluster_rollups.iter().find(|r| r.day == day);
        if fleet_day.is_none() && lat_day.is_none() && cluster_day.is_none() {
            let days: Vec<u32> = if !rollups.is_empty() {
                rollups.iter().map(|r| r.day).collect()
            } else if !lat_rollups.is_empty() {
                lat_rollups.iter().map(|r| r.day).collect()
            } else {
                cluster_rollups.iter().map(|r| r.day).collect()
            };
            let _ = writeln!(
                out,
                "== {}: no rollup at day {day} (sampled days: {}..{}, {} samples)",
                seg.label,
                days.first().copied().unwrap_or(0),
                days.last().copied().unwrap_or(0),
                days.len()
            );
            continue;
        }
        let _ = writeln!(out, "== {} — day {day}", seg.label);
        if let Some(r) = fleet_day {
            let _ = writeln!(
                out,
                "  alive {}, dead {} (wear {}, afr {}), dying {}",
                r.alive,
                r.dead(),
                r.dead_wear,
                r.dead_afr,
                r.dying
            );
            let _ = writeln!(out, "  committed capacity: {} oPages", r.capacity_opages);
            for name in DIST_NAMES {
                let bins = r.dist(name).unwrap_or(&[]);
                let _ = write!(out, "  {name:<6}:");
                if bins.iter().all(|&b| b == 0) {
                    out.push_str(" (empty)\n");
                    continue;
                }
                for q in PERCENTILES {
                    if let Some(v) = percentile_permille(bins, q) {
                        let _ = write!(out, " p{q}={v}");
                    }
                }
                let buckets: Vec<String> = bins
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b > 0)
                    .map(|(i, &b)| format!("{i}:{b}"))
                    .collect();
                let _ = writeln!(out, " | buckets {}", buckets.join(" "));
            }
        }
        if let Some(l) = lat_day {
            out.push_str("  latency (log2-bucket upper edges):\n");
            for name in LAT_CLASSES {
                let Some(c) = l.class(name) else { continue };
                if c.count == 0 {
                    continue;
                }
                let _ = write!(out, "    {name:<10}: count {}", c.count);
                if let Some(m) = c.mean_ns() {
                    let _ = write!(out, " mean {}", fmt_ns(m));
                }
                for (stat, q) in LAT_STATS {
                    if let Some(v) = c.percentile(q) {
                        let _ = write!(out, " {stat}={}", fmt_ns(v));
                    }
                }
                out.push('\n');
            }
        }
        if let Some(c) = cluster_day {
            out.push_str("  cluster durability:\n");
            let _ = writeln!(
                out,
                "    chunks: full {}, degraded {}, critical {}, lost {}",
                c.full, c.degraded, c.critical, c.lost
            );
            let _ = writeln!(
                out,
                "    recovery backlog: {} chunks ({} bytes)",
                c.backlog_chunks, c.backlog_bytes
            );
            let _ = writeln!(
                out,
                "    recovery traffic (cumulative): repair {} bytes, drain {} bytes",
                c.repair_bytes, c.drain_bytes
            );
            let _ = writeln!(out, "    data at risk: {} byte-ticks", c.data_at_risk);
            let _ = write!(out, "    exposure windows: {} closed", c.exposure_windows);
            for (stat, q) in EXPOSURE_STATS {
                if let Some(v) = c.exposure_percentile(q) {
                    let _ = write!(out, " {stat}<{v}");
                }
            }
            out.push('\n');
            let buckets: Vec<String> = c
                .fullness
                .iter()
                .enumerate()
                .filter(|(_, &b)| b > 0)
                .map(|(i, &b)| format!("{i}:{b}"))
                .collect();
            if !buckets.is_empty() {
                let _ = writeln!(out, "    unit fullness buckets: {}", buckets.join(" "));
            }
        }
        let mut anomalies = crate::fleet::fleet_scan(rollups.iter().copied());
        anomalies.extend(crate::fleet::latency_scan(lat_rollups.iter().copied()));
        anomalies.extend(crate::fleet::cluster_scan(cluster_rollups.iter().copied()));
        if anomalies.is_empty() {
            out.push_str("  no fleet anomalies flagged in this segment\n");
        } else {
            let mut ranked = anomalies;
            ranked.sort_by_key(|a| (std::cmp::Reverse(a.z_milli.abs()), a.time, a.kind));
            out.push_str("  top fleet anomalies (segment-wide):\n");
            for a in ranked.iter().take(3) {
                let _ = writeln!(
                    out,
                    "    day {:>5}: {:<17} value {} mean {} z {}",
                    a.time.day,
                    a.kind.name(),
                    milli_text(a.value_milli),
                    milli_text(a.mean_milli),
                    milli_text(a.z_milli),
                );
            }
        }
    }
    if !any {
        out.push_str("no fleet rollups recorded\n");
    }
    out
}

/// Render a milli-scaled statistic as fixed-point text (`1500` →
/// `1.500`) without ever round-tripping through floats.
fn milli_text(m: i64) -> String {
    let sign = if m < 0 { "-" } else { "" };
    let abs = m.unsigned_abs();
    format!("{sign}{}.{:03}", abs / 1000, abs % 1000)
}

/// Parse a Prometheus text exposition into `series → value` (comment
/// and `# TYPE` lines skipped; value kept verbatim as text so the diff
/// never reformats numbers).
pub fn parse_prom(text: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Split on the last space: label values may contain spaces.
        if let Some(i) = line.rfind(' ') {
            out.insert(line[..i].to_string(), line[i + 1..].to_string());
        }
    }
    out
}

/// Diff two Prometheus expositions: series only in `a` (`-`), only in
/// `b` (`+`), and changed values (`~ key a -> b`), sorted by series
/// name, followed by a summary line (always present, so "no drift" is
/// still positive evidence).
pub fn diff_prom(a: &str, b: &str) -> String {
    let a = parse_prom(a);
    let b = parse_prom(b);
    let mut out = String::new();
    let mut removed = 0u64;
    let mut added = 0u64;
    let mut changed = 0u64;
    let keys: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    for key in keys {
        match (a.get(key), b.get(key)) {
            (Some(va), None) => {
                let _ = writeln!(out, "- {key} {va}");
                removed += 1;
            }
            (None, Some(vb)) => {
                let _ = writeln!(out, "+ {key} {vb}");
                added += 1;
            }
            (Some(va), Some(vb)) if va != vb => {
                let _ = writeln!(out, "~ {key} {va} -> {vb}");
                changed += 1;
            }
            _ => {}
        }
    }
    let _ = writeln!(
        out,
        "{added} series added, {removed} removed, {changed} changed"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use salamander_obs::{DeathCause, SimTime};

    fn rec(seq: u64, day: u32, op: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq,
            time: SimTime::new(day, op),
            event,
        }
    }

    fn sample_trace() -> Vec<TraceRecord> {
        vec![
            rec(
                0,
                0,
                0,
                TraceEvent::RunMarker {
                    label: "mode=ShrinkS".into(),
                },
            ),
            rec(
                1,
                1,
                100,
                TraceEvent::PageTired {
                    fpage: 5,
                    from: 0,
                    to: 1,
                },
            ),
            rec(
                2,
                1,
                150,
                TraceEvent::PageTired {
                    fpage: 6,
                    from: 0,
                    to: 1,
                },
            ),
            rec(
                3,
                2,
                200,
                TraceEvent::GcPass {
                    block: 1,
                    relocated: 32,
                },
            ),
            rec(
                4,
                2,
                250,
                TraceEvent::ReadRetry {
                    mdisk: 3,
                    retries: 2,
                },
            ),
            rec(
                5,
                3,
                300,
                TraceEvent::MdiskDecommissioned {
                    id: 3,
                    valid_lbas: 120,
                    draining: true,
                    cause: DecommissionCause::LevelShortfall,
                },
            ),
            rec(6, 4, 400, TraceEvent::MdiskPurged { id: 3 }),
            rec(7, 4, 410, TraceEvent::MdiskRegenerated { id: 9, level: 1 }),
            rec(
                8,
                5,
                500,
                TraceEvent::DeviceDied {
                    cause: DeathCause::FullyShrunk,
                },
            ),
        ]
    }

    #[test]
    fn segments_split_on_markers() {
        let trace = sample_trace();
        let segs = segments(&trace);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].label, "mode=ShrinkS");
        assert_eq!(segs[0].records.len(), 8);
        assert!(segments(&[]).is_empty());
    }

    #[test]
    fn lifecycle_reports_timeline_and_totals() {
        let text = lifecycle(&sample_trace(), None);
        assert!(text.contains("minidisk 3 decommissioned"), "{text}");
        assert!(text.contains("cause: LevelShortfall"), "{text}");
        assert!(text.contains("minidisk 3 purged"), "{text}");
        assert!(text.contains("minidisk 9 regenerated at L1"), "{text}");
        assert!(text.contains("device died (FullyShrunk)"), "{text}");
        assert!(text.contains("2 level transitions"), "{text}");
        assert!(text.contains("1 GC passes (32 oPages relocated)"), "{text}");
    }

    #[test]
    fn lifecycle_filters_by_mdisk_but_keeps_totals() {
        let text = lifecycle(&sample_trace(), Some(9));
        assert!(text.contains("minidisk 9 regenerated"), "{text}");
        assert!(!text.contains("minidisk 3 decommissioned"), "{text}");
        assert!(
            text.contains("2 level transitions"),
            "totals whole segment: {text}"
        );
    }

    #[test]
    fn why_explains_the_decommission() {
        let text = why(&sample_trace(), Some(3));
        assert!(text.contains("why: minidisk 3"), "{text}");
        assert!(text.contains("LevelShortfall"), "{text}");
        assert!(
            text.contains("page level transitions: 2 (L0→L1: 2)"),
            "{text}"
        );
        assert!(
            text.contains("GC passes: 1 (32 oPages relocated)"),
            "{text}"
        );
        assert!(text.contains("2 retries"), "{text}");
        assert!(text.contains("purged before ack"), "{text}");
        assert!(text.contains("minidisk 9 regenerated at L1"), "{text}");
        assert!(text.contains("device died (FullyShrunk)"), "{text}");
    }

    #[test]
    fn why_defaults_to_first_decommissioned() {
        let text = why(&sample_trace(), None);
        assert!(text.contains("why: minidisk 3"), "{text}");
    }

    #[test]
    fn why_reports_missing_mdisk_gracefully() {
        let text = why(&sample_trace(), Some(42));
        assert!(
            text.contains("minidisk 42 was never decommissioned"),
            "{text}"
        );
        assert!(text.contains("[3]"), "lists candidates: {text}");
        let none = why(&[], None);
        assert!(none.contains("no minidisk was decommissioned"), "{none}");
    }

    #[test]
    fn fleet_rollup_tables_and_csv() {
        let trace = vec![
            rec(
                0,
                10,
                0,
                TraceEvent::FleetDeviceDied {
                    device: 2,
                    cause: DeathCause::Wear,
                },
            ),
            rec(
                1,
                4,
                0,
                TraceEvent::FleetDeviceDied {
                    device: 7,
                    cause: DeathCause::Afr,
                },
            ),
            rec(2, 11, 0, TraceEvent::ChunkLost { chunk: 9 }),
            rec(
                3,
                12,
                0,
                TraceEvent::ChunkReReplicated {
                    chunk: 1,
                    bytes: 4096,
                },
            ),
        ];
        let table = fleet_rollup(&trace, false);
        assert!(table.contains("2 device deaths"), "{table}");
        assert!(table.contains("1 chunks lost"), "{table}");
        assert!(table.contains("4096 bytes re-replicated"), "{table}");
        let csv = fleet_rollup(&trace, true);
        // Sorted by device index, not emission order.
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "device,died_day,cause");
        assert_eq!(lines[1], "2,10,Wear");
        assert_eq!(lines[2], "7,4,Afr");
    }

    /// A trace shaped like a real run: long stretches of high-volume
    /// wear/GC noise with sparse lifecycle anchors, so small chunks
    /// give the index real skipping opportunities.
    fn bulky_trace() -> Vec<TraceRecord> {
        let mut out = Vec::new();
        let mut seq = 0u64;
        let mut push = |out: &mut Vec<TraceRecord>, day: u32, event: TraceEvent| {
            out.push(rec(seq, day, seq * 10, event));
            seq += 1;
        };
        push(
            &mut out,
            0,
            TraceEvent::RunMarker {
                label: "mode=ShrinkS".into(),
            },
        );
        for i in 0..400u64 {
            let day = (i / 10) as u32 + 1;
            push(
                &mut out,
                day,
                TraceEvent::PageTired {
                    fpage: i,
                    from: (i % 4) as u8,
                    to: (i % 4) as u8 + 1,
                },
            );
            if i % 7 == 0 {
                push(
                    &mut out,
                    day,
                    TraceEvent::GcPass {
                        block: i,
                        relocated: 16,
                    },
                );
            }
            if i % 13 == 0 {
                push(
                    &mut out,
                    day,
                    TraceEvent::ReadRetry {
                        mdisk: (i % 5) as u32,
                        retries: 1,
                    },
                );
            }
            if i % 31 == 0 {
                push(&mut out, day, TraceEvent::PageRetired { fpage: i, from: 4 });
            }
        }
        push(
            &mut out,
            41,
            TraceEvent::MdiskDecommissioned {
                id: 3,
                valid_lbas: 99,
                draining: true,
                cause: DecommissionCause::GcHeadroom,
            },
        );
        for i in 400..600u64 {
            push(
                &mut out,
                42,
                TraceEvent::ScrubRefresh {
                    fpage: i,
                    opages: 4,
                },
            );
        }
        push(&mut out, 43, TraceEvent::MdiskPurged { id: 3 });
        push(
            &mut out,
            44,
            TraceEvent::FleetDeviceDied {
                device: 1,
                cause: DeathCause::Wear,
            },
        );
        push(
            &mut out,
            45,
            TraceEvent::ChunkReReplicated {
                chunk: 7,
                bytes: 8192,
            },
        );
        out
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("salamander-query-{}-{name}", std::process::id()))
    }

    #[test]
    fn indexed_queries_match_flat_queries_and_skip_chunks() {
        use salamander_obs::strc::{write_strc, StrcReader};
        let records = bulky_trace();
        let path = tmp("indexed.strc");
        // 32-record chunks: the bulk of the trace is summary-only.
        write_strc(&path, &records, 32).unwrap();

        for mdisk in [None, Some(3), Some(42)] {
            let mut r = StrcReader::open(&path).unwrap();
            assert_eq!(
                lifecycle_strc(&mut r, mdisk).unwrap(),
                lifecycle(&records, mdisk),
                "lifecycle mdisk={mdisk:?}"
            );
            assert!(
                (r.chunks_decoded as usize) < r.chunk_count(),
                "lifecycle decoded every chunk ({} of {})",
                r.chunks_decoded,
                r.chunk_count()
            );

            let mut r = StrcReader::open(&path).unwrap();
            assert_eq!(
                why_strc(&mut r, mdisk).unwrap(),
                why(&records, mdisk),
                "why mdisk={mdisk:?}"
            );
        }

        let mut r = StrcReader::open(&path).unwrap();
        assert_eq!(
            fleet_rollup_strc(&mut r, false).unwrap(),
            fleet_rollup(&records, false)
        );
        assert!((r.chunks_decoded as usize) < r.chunk_count());
        let mut r = StrcReader::open(&path).unwrap();
        assert_eq!(
            fleet_rollup_strc(&mut r, true).unwrap(),
            fleet_rollup(&records, true)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn indexed_queries_handle_empty_traces() {
        use salamander_obs::strc::{write_strc, StrcReader};
        let path = tmp("indexed-empty.strc");
        write_strc(&path, &[], 32).unwrap();
        let mut r = StrcReader::open(&path).unwrap();
        assert_eq!(lifecycle_strc(&mut r, None).unwrap(), lifecycle(&[], None));
        let mut r = StrcReader::open(&path).unwrap();
        assert_eq!(why_strc(&mut r, None).unwrap(), why(&[], None));
        let mut r = StrcReader::open(&path).unwrap();
        assert_eq!(
            fleet_rollup_strc(&mut r, false).unwrap(),
            fleet_rollup(&[], false)
        );
        let _ = std::fs::remove_file(&path);
    }

    /// A two-segment fleet trace: per-day rollups interleaved with
    /// death events and enough noise that small chunks give the index
    /// something to skip.
    fn rollup_trace() -> Vec<TraceRecord> {
        use salamander_obs::DIST_BUCKETS;
        let mut out = Vec::new();
        let mut seq = 0u64;
        let mut push = |out: &mut Vec<TraceRecord>, day: u32, event: TraceEvent| {
            out.push(rec(seq, day, 0, event));
            seq += 1;
        };
        for label in ["fleet=Baseline", "fleet=ShrinkS"] {
            push(
                &mut out,
                0,
                TraceEvent::RunMarker {
                    label: label.into(),
                },
            );
            for i in 0..30u32 {
                let day = (i + 1) * 30;
                // Noise the rollup queries never print — enough of it
                // that whole chunks contain no rollup and the decode
                // mask has something to skip.
                for j in 0..40u64 {
                    push(
                        &mut out,
                        day,
                        TraceEvent::GcPass {
                            block: u64::from(i) * 8 + j,
                            relocated: 4,
                        },
                    );
                }
                if i % 5 == 4 {
                    push(
                        &mut out,
                        day,
                        TraceEvent::FleetDeviceDied {
                            device: i,
                            cause: DeathCause::Wear,
                        },
                    );
                }
                let dead = i / 5;
                let mut wear = vec![0u32; DIST_BUCKETS];
                wear[(i as usize / 3).min(19)] = 100 - dead;
                let mut health = vec![0u32; DIST_BUCKETS];
                health[19 - (i as usize / 4).min(19)] = 100 - dead;
                push(
                    &mut out,
                    day,
                    TraceEvent::FleetRollup(salamander_obs::FleetRollup {
                        day,
                        alive: 100 - dead,
                        dead_wear: dead,
                        dead_afr: 0,
                        dying: i / 10,
                        capacity_opages: u64::from(100 - dead) * 5000,
                        wear,
                        pec: vec![0; DIST_BUCKETS],
                        usable: vec![0; DIST_BUCKETS],
                        health,
                    }),
                );
            }
        }
        out
    }

    #[test]
    fn fleet_timeline_renders_per_segment_series() {
        let trace = rollup_trace();
        let text = fleet_timeline(&trace);
        assert!(
            text.contains("== fleet=Baseline (30 sampled days)"),
            "{text}"
        );
        assert!(
            text.contains("== fleet=ShrinkS (30 sampled days)"),
            "{text}"
        );
        // Day 900 (i=29): 5 dead, wear median in bucket 9 -> 500‰.
        let day900: Vec<&str> = text
            .lines()
            .filter(|l| l.trim_start().starts_with("900"))
            .collect();
        assert_eq!(day900.len(), 2, "{text}");
        assert!(day900[0].contains("95"), "{text}");
        assert!(day900[0].contains("500"), "{text}");
        assert!(fleet_timeline(&[]).contains("no fleet rollups recorded"));
    }

    #[test]
    fn percentiles_pin_bucket_edges() {
        let trace = rollup_trace();
        let text = percentiles(&trace, "wear");
        assert!(
            text.contains("== fleet=Baseline — wear distribution"),
            "{text}"
        );
        // Every device sits in one bucket, so all percentiles agree:
        // day 30 (i=0) -> bucket 0 -> 50‰ everywhere.
        let day30 = text
            .lines()
            .find(|l| l.trim_start().starts_with("30 "))
            .unwrap();
        assert_eq!(
            day30.split_whitespace().collect::<Vec<_>>(),
            vec!["30", "50", "50", "50", "50", "50"],
            "{text}"
        );
        assert!(percentiles(&trace, "bogus").contains("unknown distribution"),);
        assert!(percentiles(&[], "wear").contains("no fleet rollups recorded"));
    }

    #[test]
    fn drill_reports_day_detail_and_misses_gracefully() {
        let trace = rollup_trace();
        let text = drill(&trace, 900);
        assert!(text.contains("== fleet=Baseline — day 900"), "{text}");
        assert!(
            text.contains("alive 95, dead 5 (wear 5, afr 0), dying 2"),
            "{text}"
        );
        assert!(text.contains("committed capacity: 475000 oPages"), "{text}");
        assert!(text.contains("wear  : p1=500"), "{text}");
        assert!(text.contains("| buckets 9:95"), "{text}");
        // The steady synthetic fleet flags nothing — that is asserted,
        // not ignored, so a future detector change shows up here.
        assert!(text.contains("no fleet anomalies flagged"), "{text}");
        let miss = drill(&trace, 901);
        assert!(
            miss.contains("no rollup at day 901 (sampled days: 30..900, 30 samples)"),
            "{miss}"
        );
    }

    #[test]
    fn rollup_queries_match_indexed_and_skip_chunks() {
        use salamander_obs::strc::{write_strc, StrcReader};
        let records = rollup_trace();
        let path = tmp("rollup-queries.strc");
        write_strc(&path, &records, 16).unwrap();

        let mut r = StrcReader::open(&path).unwrap();
        assert_eq!(
            fleet_timeline_strc(&mut r).unwrap(),
            fleet_timeline(&records)
        );
        assert!(
            (r.chunks_decoded as usize) < r.chunk_count(),
            "timeline decoded every chunk ({} of {})",
            r.chunks_decoded,
            r.chunk_count()
        );

        for metric in DIST_NAMES {
            let mut r = StrcReader::open(&path).unwrap();
            assert_eq!(
                percentiles_strc(&mut r, metric).unwrap(),
                percentiles(&records, metric),
                "percentiles {metric}"
            );
        }

        for day in [30, 900, 901] {
            let mut r = StrcReader::open(&path).unwrap();
            assert_eq!(
                drill_strc(&mut r, day).unwrap(),
                drill(&records, day),
                "drill {day}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    /// A latency-bearing trace: per-sample latency rollups (host reads
    /// drifting from the L0 to the L1 bucket, with a late p99 jump)
    /// buried in enough GC noise that small chunks give the latency
    /// decode mask something to skip.
    fn latency_trace() -> Vec<TraceRecord> {
        use salamander_obs::LatencyRollup;
        let mut out = Vec::new();
        let mut seq = 0u64;
        let mut push = |out: &mut Vec<TraceRecord>, day: u32, event: TraceEvent| {
            out.push(rec(seq, day, 0, event));
            seq += 1;
        };
        push(
            &mut out,
            0,
            TraceEvent::RunMarker {
                label: "mode=RegenS".into(),
            },
        );
        for day in 1..=30u32 {
            for j in 0..40u64 {
                push(
                    &mut out,
                    day,
                    TraceEvent::GcPass {
                        block: u64::from(day) * 64 + j,
                        relocated: 4,
                    },
                );
            }
            let mut r = LatencyRollup::empty(day);
            // Reads: mostly the L0 sense cost, an L1 share growing with
            // the day, and on day 30 a 10x tail burst.
            r.classes[0].observe(60_120, 100);
            r.classes[0].observe(76_786, u64::from(day) * 4);
            if day == 30 {
                r.classes[0].observe(600_000, 5);
            }
            r.classes[1].observe(605_120, 50);
            push(&mut out, day, TraceEvent::LatencyRollup(r));
        }
        out
    }

    #[test]
    fn latency_renders_class_tables_and_validates() {
        let trace = latency_trace();
        let text = latency(&trace, None);
        assert!(text.contains("== mode=RegenS (30 sampled days)"), "{text}");
        assert!(text.contains("-- host_read"), "{text}");
        assert!(text.contains("-- host_write"), "{text}");
        // Unpopulated classes are silent unless asked for.
        assert!(!text.contains("-- scrub"), "{text}");
        // Day 1: 100 reads at 60.120us + 4 at 76.786us -> p50 at the
        // L0 bucket edge (61.440us), p99 at the L1 edge (81.920us).
        let day1 = text
            .lines()
            .find(|l| l.trim_start().starts_with("1 "))
            .unwrap();
        assert!(day1.contains("104"), "{day1}");
        assert!(day1.contains("61.440us"), "{day1}");
        assert!(day1.contains("81.920us"), "{day1}");
        let filtered = latency(&trace, Some("host_write"));
        assert!(filtered.contains("-- host_write"), "{filtered}");
        assert!(!filtered.contains("-- host_read"), "{filtered}");
        let empty_class = latency(&trace, Some("scrub"));
        assert!(
            empty_class.contains("-- scrub: no samples recorded"),
            "{empty_class}"
        );
        assert!(
            latency(&trace, Some("bogus")).contains("unknown latency class 'bogus'"),
            "class names are validated"
        );
        assert!(latency(&[], None).contains("no latency rollups recorded"));
    }

    #[test]
    fn latency_flags_tail_regressions() {
        let text = latency(&latency_trace(), Some("host_read"));
        // The day-30 burst deviates from 29 days of steady history.
        assert!(text.contains("tail-latency regressions"), "{text}");
        assert!(text.contains("day    30: host_read"), "{text}");
    }

    #[test]
    fn latency_and_drill_match_indexed_and_skip_chunks() {
        use salamander_obs::strc::{write_strc, StrcReader};
        let records = latency_trace();
        let path = tmp("latency-queries.strc");
        write_strc(&path, &records, 16).unwrap();

        for class in [None, Some("host_read"), Some("gc")] {
            let mut r = StrcReader::open(&path).unwrap();
            assert_eq!(
                latency_strc(&mut r, class).unwrap(),
                latency(&records, class),
                "latency class={class:?}"
            );
            assert!(
                (r.chunks_decoded as usize) < r.chunk_count(),
                "latency decoded every chunk ({} of {})",
                r.chunks_decoded,
                r.chunk_count()
            );
        }

        // Drill shows the day's latency distributions from the same
        // record, identically over both forms, still skipping chunks.
        for day in [1, 30, 99] {
            let mut r = StrcReader::open(&path).unwrap();
            assert_eq!(
                drill_strc(&mut r, day).unwrap(),
                drill(&records, day),
                "drill {day}"
            );
            assert!((r.chunks_decoded as usize) < r.chunk_count());
        }
        let text = drill(&records, 30);
        assert!(text.contains("latency (log2-bucket upper edges)"), "{text}");
        assert!(text.contains("host_read : count 225"), "{text}");
        assert!(text.contains("tail_latency_regression"), "{text}");
        let miss = drill(&records, 99);
        assert!(
            miss.contains("no rollup at day 99 (sampled days: 1..30, 30 samples)"),
            "{miss}"
        );
        let _ = std::fs::remove_file(&path);
    }

    /// A cluster-bearing trace: per-tick durability rollups — a
    /// failure burst at tick 20 that repair drains over the next four
    /// ticks — buried in GC noise so small chunks give the cluster
    /// decode mask something to skip, plus a short second segment that
    /// loses chunks outright.
    fn cluster_trace() -> Vec<TraceRecord> {
        use salamander_obs::cluster::exposure_bucket;
        use salamander_obs::EXPOSURE_BUCKETS;
        const CHUNK: u64 = 65_536;
        let mut out = Vec::new();
        let mut seq = 0u64;
        let mut push = |out: &mut Vec<TraceRecord>, day: u32, event: TraceEvent| {
            out.push(rec(seq, day, 0, event));
            seq += 1;
        };
        push(
            &mut out,
            0,
            TraceEvent::RunMarker {
                label: "cluster=Shrink".into(),
            },
        );
        let mut exposure = vec![0u64; EXPOSURE_BUCKETS];
        let mut windows = 0u64;
        let mut repaired = 0u64;
        for tick in 1..=30u32 {
            for j in 0..40u64 {
                push(
                    &mut out,
                    tick,
                    TraceEvent::GcPass {
                        block: u64::from(tick) * 64 + j,
                        relocated: 4,
                    },
                );
            }
            if (21..=24).contains(&tick) {
                // 10 of the tick-20 casualties repair per tick; their
                // windows close with dwell = tick - 20.
                exposure[exposure_bucket(u64::from(tick - 20))] += 10;
                windows += 10;
                repaired += 10;
            }
            let exposed = if (20..=23).contains(&tick) {
                40 - repaired
            } else {
                0
            };
            let mut r = ClusterRollup::empty(tick);
            r.full = 500 - exposed;
            r.degraded = exposed;
            r.backlog_chunks = exposed;
            r.backlog_bytes = exposed * CHUNK;
            r.repair_bytes = repaired * CHUNK;
            r.drain_bytes = if tick >= 10 { 3 * CHUNK } else { 0 };
            r.data_at_risk = exposed * CHUNK * u64::from(tick.saturating_sub(20));
            r.fullness[8] = 6;
            r.exposure = exposure.clone();
            r.exposure_windows = windows;
            push(&mut out, tick, TraceEvent::ClusterRollup(r));
        }
        push(
            &mut out,
            0,
            TraceEvent::RunMarker {
                label: "cluster=Loss".into(),
            },
        );
        for tick in 1..=12u32 {
            for j in 0..20u64 {
                push(
                    &mut out,
                    tick,
                    TraceEvent::GcPass {
                        block: 10_000 + u64::from(tick) * 32 + j,
                        relocated: 4,
                    },
                );
            }
            let mut r = ClusterRollup::empty(tick);
            r.full = 64;
            if tick >= 10 {
                r.lost = 2;
                r.exposure[exposure_bucket(5)] = 2;
                r.exposure_windows = 2;
            }
            push(&mut out, tick, TraceEvent::ClusterRollup(r));
        }
        out
    }

    #[test]
    fn cluster_renders_timeline_and_flags_storms() {
        let trace = cluster_trace();
        let text = cluster(&trace);
        assert!(
            text.contains("== cluster=Shrink (30 sampled ticks)"),
            "{text}"
        );
        let tick20 = text
            .lines()
            .find(|l| l.trim_start().starts_with("20 "))
            .unwrap();
        let cols: Vec<&str> = tick20.split_whitespace().collect();
        assert_eq!(
            cols,
            vec!["20", "460", "40", "0", "0", "40", "2621440", "0", "196608"],
            "{text}"
        );
        // The tick-20 backlog jump deviates from 19 flat ticks.
        assert!(text.contains("recovery anomalies"), "{text}");
        assert!(text.contains("recovery_storm"), "{text}");
        // The second segment's lost transition flags immediately.
        assert!(
            text.contains("== cluster=Loss (12 sampled ticks)"),
            "{text}"
        );
        assert!(text.contains("data_loss"), "{text}");
        assert!(cluster(&[]).contains("no cluster rollups recorded"));
    }

    #[test]
    fn exposure_reports_dwell_percentiles() {
        let trace = cluster_trace();
        let text = exposure(&trace);
        assert!(
            text.contains("== cluster=Shrink — replication-exposure windows over 30 sampled ticks"),
            "{text}"
        );
        assert!(text.contains("windows closed: 40"), "{text}");
        // 10 windows each of dwell 1,2,3,4 ticks: log2 buckets <2:10
        // <4:20 <8:10, nearest-rank p50 at rank 20 -> <4, p90/p99 -> <8.
        assert!(text.contains("p50<4 p90<8 p99<8"), "{text}");
        assert!(
            text.contains("dwell buckets (ticks): <2:10 <4:20 <8:10"),
            "{text}"
        );
        assert!(
            text.contains("open at end: 0 chunks exposed, data at risk 0 byte-ticks"),
            "{text}"
        );
        assert!(text.contains("lost outright: 2"), "{text}");
        assert!(exposure(&[]).contains("no cluster rollups recorded"));
    }

    #[test]
    fn drill_shows_cluster_section() {
        let trace = cluster_trace();
        let text = drill(&trace, 20);
        assert!(text.contains("== cluster=Shrink — day 20"), "{text}");
        assert!(text.contains("cluster durability:"), "{text}");
        assert!(
            text.contains("chunks: full 460, degraded 40, critical 0, lost 0"),
            "{text}"
        );
        assert!(
            text.contains("recovery backlog: 40 chunks (2621440 bytes)"),
            "{text}"
        );
        assert!(
            text.contains("recovery traffic (cumulative): repair 0 bytes, drain 196608 bytes"),
            "{text}"
        );
        assert!(text.contains("unit fullness buckets: 8:6"), "{text}");
        assert!(text.contains("recovery_storm"), "{text}");
        let miss = drill(&trace, 99);
        assert!(
            miss.contains("no rollup at day 99 (sampled days: 1..30, 30 samples)"),
            "{miss}"
        );
    }

    #[test]
    fn cluster_queries_match_indexed_and_skip_chunks() {
        use salamander_obs::strc::{write_strc, StrcReader};
        let records = cluster_trace();
        let path = tmp("cluster-queries.strc");
        write_strc(&path, &records, 16).unwrap();

        let mut r = StrcReader::open(&path).unwrap();
        assert_eq!(cluster_strc(&mut r).unwrap(), cluster(&records));
        assert!(
            (r.chunks_decoded as usize) < r.chunk_count(),
            "cluster decoded every chunk ({} of {})",
            r.chunks_decoded,
            r.chunk_count()
        );

        let mut r = StrcReader::open(&path).unwrap();
        assert_eq!(exposure_strc(&mut r).unwrap(), exposure(&records));
        assert!((r.chunks_decoded as usize) < r.chunk_count());

        for day in [1, 20, 24, 99] {
            let mut r = StrcReader::open(&path).unwrap();
            assert_eq!(
                drill_strc(&mut r, day).unwrap(),
                drill(&records, day),
                "drill {day}"
            );
            assert!((r.chunks_decoded as usize) < r.chunk_count());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn prom_parse_and_diff() {
        let a = "# TYPE x counter\nx_total 5\ng{day=\"1\"} 2\nonly_a 1\n";
        let b = "# TYPE x counter\nx_total 6\ng{day=\"1\"} 2\nonly_b 3\n";
        let parsed = parse_prom(a);
        assert_eq!(parsed.get("x_total").map(String::as_str), Some("5"));
        assert_eq!(parsed.len(), 3);
        let diff = diff_prom(a, b);
        assert!(diff.contains("~ x_total 5 -> 6"), "{diff}");
        assert!(diff.contains("- only_a 1"), "{diff}");
        assert!(diff.contains("+ only_b 3"), "{diff}");
        assert!(
            diff.contains("1 series added, 1 removed, 1 changed"),
            "{diff}"
        );
        let same = diff_prom(a, a);
        assert_eq!(same, "0 series added, 0 removed, 0 changed\n");
    }
}
