//! Offline trace queries: the engine behind `obsctl` (DESIGN.md §11).
//!
//! Everything here is a pure function from recorded telemetry to a
//! `String` — no I/O, no printing — so the CLI, the examples, and the
//! golden tests all share one deterministic rendering path.

use salamander_obs::{DecommissionCause, TraceEvent, TraceRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One run segment of a trace: the label of the `RunMarker` that opened
/// it and the records that follow (markers excluded).
#[derive(Debug, Clone)]
pub struct Segment<'a> {
    /// Run label (`"(unlabelled)"` for records before any marker).
    pub label: String,
    /// Records in emission order.
    pub records: Vec<&'a TraceRecord>,
}

/// Split a trace on `RunMarker` boundaries. A trace without markers is
/// one anonymous segment; an empty trace has no segments.
pub fn segments(records: &[TraceRecord]) -> Vec<Segment<'_>> {
    let mut out: Vec<Segment<'_>> = Vec::new();
    for r in records {
        match &r.event {
            TraceEvent::RunMarker { label } => out.push(Segment {
                label: label.clone(),
                records: Vec::new(),
            }),
            _ => {
                if out.is_empty() {
                    out.push(Segment {
                        label: "(unlabelled)".into(),
                        records: Vec::new(),
                    });
                }
                out.last_mut().expect("segment exists").records.push(r);
            }
        }
    }
    out
}

/// Whether an event concerns minidisk `id` (lifecycle or read path).
fn concerns(event: &TraceEvent, id: u32) -> bool {
    match event {
        TraceEvent::MdiskDecommissioned { id: m, .. }
        | TraceEvent::MdiskPurged { id: m }
        | TraceEvent::MdiskRegenerated { id: m, .. } => *m == id,
        TraceEvent::ReadRetry { mdisk, .. } | TraceEvent::UncorrectableRead { mdisk, .. } => {
            *mdisk == id
        }
        _ => false,
    }
}

/// Render the lifecycle timeline of a trace: per segment, every
/// minidisk decommission/purge/regeneration, device deaths, chunk
/// losses, and totals for the high-volume events. With `mdisk`, only
/// lines concerning that minidisk (totals still cover the segment).
pub fn lifecycle(records: &[TraceRecord], mdisk: Option<u32>) -> String {
    let mut out = String::new();
    if records.is_empty() {
        out.push_str("empty trace\n");
        return out;
    }
    let segs = segments(records);
    let _ = writeln!(
        out,
        "{} events, {} run segment(s)",
        records.len(),
        segs.len()
    );
    for seg in &segs {
        let _ = writeln!(out, "\n== {} ({} events)", seg.label, seg.records.len());
        let mut tired = 0u64;
        let mut retired = 0u64;
        let mut gc_passes = 0u64;
        let mut gc_relocated = 0u64;
        let mut scrubs = 0u64;
        let mut retries = 0u64;
        let mut rereplicated = 0u64;
        for r in &seg.records {
            let day = r.time.day;
            if let Some(id) = mdisk {
                if !concerns(&r.event, id) && !matches!(r.event, TraceEvent::DeviceDied { .. }) {
                    // Totals below still count the whole segment.
                    match &r.event {
                        TraceEvent::PageTired { .. } => tired += 1,
                        TraceEvent::PageRetired { .. } => retired += 1,
                        TraceEvent::GcPass { relocated, .. } => {
                            gc_passes += 1;
                            gc_relocated += relocated;
                        }
                        TraceEvent::ScrubRefresh { .. } => scrubs += 1,
                        TraceEvent::ReadRetry { .. } => retries += 1,
                        TraceEvent::ChunkReReplicated { bytes, .. } => rereplicated += bytes,
                        _ => {}
                    }
                    continue;
                }
            }
            match &r.event {
                TraceEvent::MdiskDecommissioned {
                    id,
                    valid_lbas,
                    draining,
                    cause,
                } => {
                    let _ = writeln!(
                        out,
                        "  day {day:>5}: minidisk {id} decommissioned \
                         ({valid_lbas} valid LBAs, {}, cause: {cause:?})",
                        if *draining { "draining" } else { "dropped" }
                    );
                }
                TraceEvent::MdiskPurged { id } => {
                    let _ = writeln!(out, "  day {day:>5}: minidisk {id} purged before ack");
                }
                TraceEvent::MdiskRegenerated { id, level } => {
                    let _ = writeln!(out, "  day {day:>5}: minidisk {id} regenerated at L{level}");
                }
                TraceEvent::DeviceDied { cause } => {
                    let _ = writeln!(out, "  day {day:>5}: device died ({cause:?})");
                }
                TraceEvent::FleetDeviceDied { device, cause } => {
                    let _ = writeln!(
                        out,
                        "  day {day:>5}: fleet device {device} died ({cause:?})"
                    );
                }
                TraceEvent::ChunkLost { chunk } => {
                    let _ = writeln!(out, "  day {day:>5}: chunk {chunk} LOST");
                }
                TraceEvent::UncorrectableRead { mdisk, lba } => {
                    let _ = writeln!(
                        out,
                        "  day {day:>5}: uncorrectable read (minidisk {mdisk}, lba {lba})"
                    );
                }
                TraceEvent::PageTired { .. } => tired += 1,
                TraceEvent::PageRetired { .. } => retired += 1,
                TraceEvent::GcPass { relocated, .. } => {
                    gc_passes += 1;
                    gc_relocated += relocated;
                }
                TraceEvent::ScrubRefresh { .. } => scrubs += 1,
                TraceEvent::ReadRetry { .. } => retries += 1,
                TraceEvent::ChunkReReplicated { bytes, .. } => rereplicated += bytes,
                TraceEvent::RunMarker { .. } => {}
            }
        }
        let _ = writeln!(
            out,
            "  totals: {tired} level transitions, {retired} page retirements, \
             {gc_passes} GC passes ({gc_relocated} oPages relocated), \
             {scrubs} scrub refreshes, {retries} read retries"
        );
        if rereplicated > 0 {
            let _ = writeln!(
                out,
                "  totals: {rereplicated} bytes re-replicated by the diFS"
            );
        }
    }
    out
}

/// Human text for a decommission cause.
fn cause_text(cause: DecommissionCause) -> &'static str {
    match cause {
        DecommissionCause::LevelShortfall => {
            "a tiredness level's committed ledger exceeded its usable pages \
             (wear transitions shrank the level faster than GC could drain it)"
        }
        DecommissionCause::GcHeadroom => {
            "global GC headroom dropped below the overprovisioning floor \
             (Eq. 1: usable − committed − draining − reserve)"
        }
    }
}

/// Explain *why* a minidisk was decommissioned: its decommission event,
/// the wear pressure recorded before it (level transitions, retirements,
/// GC activity, this minidisk's read retries), and the aftermath (purge,
/// replacement regenerations, device death). With `mdisk = None`, the
/// first decommissioned minidisk in the trace is explained.
pub fn why(records: &[TraceRecord], mdisk: Option<u32>) -> String {
    let mut out = String::new();
    // Locate the decommission record (and its segment).
    let segs = segments(records);
    let mut found: Option<(&Segment<'_>, usize)> = None;
    'outer: for seg in &segs {
        for (i, r) in seg.records.iter().enumerate() {
            if let TraceEvent::MdiskDecommissioned { id, .. } = &r.event {
                if mdisk.is_none() || mdisk == Some(*id) {
                    found = Some((seg, i));
                    break 'outer;
                }
            }
        }
    }
    let Some((seg, idx)) = found else {
        match mdisk {
            Some(id) => {
                let _ = writeln!(out, "minidisk {id} was never decommissioned in this trace");
                let mut ids: Vec<u32> = Vec::new();
                for r in records {
                    if let TraceEvent::MdiskDecommissioned { id, .. } = &r.event {
                        if !ids.contains(id) {
                            ids.push(*id);
                        }
                    }
                }
                if ids.is_empty() {
                    out.push_str("no minidisk was decommissioned at all\n");
                } else {
                    let _ = writeln!(out, "decommissioned minidisks: {ids:?}");
                }
            }
            None => out.push_str("no minidisk was decommissioned in this trace\n"),
        }
        return out;
    };
    let rec = seg.records[idx];
    let TraceEvent::MdiskDecommissioned {
        id,
        valid_lbas,
        draining,
        cause,
    } = &rec.event
    else {
        unreachable!("found index points at a decommission");
    };
    let _ = writeln!(out, "why: minidisk {id} (segment \"{}\")", seg.label);
    let _ = writeln!(
        out,
        "  day {:>5} op {:>8}: decommissioned, {} valid LBAs, {}",
        rec.time.day,
        rec.time.op,
        valid_lbas,
        if *draining {
            "entered draining grace period"
        } else {
            "dropped immediately"
        }
    );
    let _ = writeln!(out, "  cause: {:?} — {}", cause, cause_text(*cause));

    // Wear pressure recorded before the decommission, within the segment.
    let mut transitions: BTreeMap<(u8, u8), u64> = BTreeMap::new();
    let mut retired = 0u64;
    let mut gc_passes = 0u64;
    let mut gc_relocated = 0u64;
    let mut own_retries = 0u64;
    let mut own_uncorrectable = 0u64;
    for r in &seg.records[..idx] {
        match &r.event {
            TraceEvent::PageTired { from, to, .. } => {
                *transitions.entry((*from, *to)).or_insert(0) += 1;
            }
            TraceEvent::PageRetired { .. } => retired += 1,
            TraceEvent::GcPass { relocated, .. } => {
                gc_passes += 1;
                gc_relocated += relocated;
            }
            TraceEvent::ReadRetry { mdisk, retries } if *mdisk == *id => {
                own_retries += *retries as u64;
            }
            TraceEvent::UncorrectableRead { mdisk, .. } if *mdisk == *id => {
                own_uncorrectable += 1;
            }
            _ => {}
        }
    }
    out.push_str("  pressure before the decommission:\n");
    if transitions.is_empty() && retired == 0 {
        out.push_str("    no page wear recorded\n");
    } else {
        if transitions.is_empty() {
            out.push_str("    page level transitions: 0\n");
        } else {
            let flows: Vec<String> = transitions
                .iter()
                .map(|((f, t), n)| format!("L{f}→L{t}: {n}"))
                .collect();
            let _ = writeln!(
                out,
                "    page level transitions: {} ({})",
                transitions.values().sum::<u64>(),
                flows.join(", ")
            );
        }
        let _ = writeln!(out, "    page retirements: {retired}");
    }
    let _ = writeln!(
        out,
        "    GC passes: {gc_passes} ({gc_relocated} oPages relocated)"
    );
    let _ = writeln!(
        out,
        "    this minidisk's read path: {own_retries} retries, \
         {own_uncorrectable} uncorrectable reads"
    );

    // Aftermath: what happened to this minidisk and the device after.
    out.push_str("  aftermath:\n");
    let mut any = false;
    for r in &seg.records[idx + 1..] {
        let day = r.time.day;
        let op = r.time.op;
        match &r.event {
            TraceEvent::MdiskPurged { id: m } if *m == *id => {
                let _ = writeln!(out, "    day {day:>5} op {op:>8}: purged before ack");
                any = true;
            }
            TraceEvent::MdiskRegenerated { id: m, level } => {
                let _ = writeln!(
                    out,
                    "    day {day:>5} op {op:>8}: minidisk {m} regenerated at L{level} \
                     (replacement capacity)"
                );
                any = true;
            }
            TraceEvent::DeviceDied { cause } => {
                let _ = writeln!(out, "    day {day:>5} op {op:>8}: device died ({cause:?})");
                any = true;
            }
            _ => {}
        }
    }
    if !any {
        out.push_str("    none recorded (still draining at end of trace)\n");
    }
    out
}

/// Fleet rollup: per-device death day and cause plus chunk-durability
/// totals, as an aligned table or CSV (`device,died_day,cause`).
pub fn fleet_rollup(records: &[TraceRecord], csv: bool) -> String {
    let mut out = String::new();
    let mut deaths: Vec<(u32, u32, String)> = Vec::new();
    let mut lost = 0u64;
    let mut rereplicated = 0u64;
    for r in records {
        match &r.event {
            TraceEvent::FleetDeviceDied { device, cause } => {
                deaths.push((*device, r.time.day, format!("{cause:?}")));
            }
            TraceEvent::ChunkLost { .. } => lost += 1,
            TraceEvent::ChunkReReplicated { bytes, .. } => rereplicated += bytes,
            _ => {}
        }
    }
    deaths.sort();
    if csv {
        out.push_str("device,died_day,cause\n");
        for (device, day, cause) in &deaths {
            let _ = writeln!(out, "{device},{day},{cause}");
        }
        return out;
    }
    if deaths.is_empty() {
        out.push_str("no fleet device deaths recorded\n");
    } else {
        let _ = writeln!(out, "{:>8} {:>9} {:<6}", "device", "died_day", "cause");
        for (device, day, cause) in &deaths {
            let _ = writeln!(out, "{device:>8} {day:>9} {cause:<6}");
        }
    }
    let _ = writeln!(
        out,
        "totals: {} device deaths, {lost} chunks lost, \
         {rereplicated} bytes re-replicated",
        deaths.len()
    );
    out
}

/// Parse a Prometheus text exposition into `series → value` (comment
/// and `# TYPE` lines skipped; value kept verbatim as text so the diff
/// never reformats numbers).
pub fn parse_prom(text: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Split on the last space: label values may contain spaces.
        if let Some(i) = line.rfind(' ') {
            out.insert(line[..i].to_string(), line[i + 1..].to_string());
        }
    }
    out
}

/// Diff two Prometheus expositions: series only in `a` (`-`), only in
/// `b` (`+`), and changed values (`~ key a -> b`), sorted by series
/// name, followed by a summary line (always present, so "no drift" is
/// still positive evidence).
pub fn diff_prom(a: &str, b: &str) -> String {
    let a = parse_prom(a);
    let b = parse_prom(b);
    let mut out = String::new();
    let mut removed = 0u64;
    let mut added = 0u64;
    let mut changed = 0u64;
    let keys: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    for key in keys {
        match (a.get(key), b.get(key)) {
            (Some(va), None) => {
                let _ = writeln!(out, "- {key} {va}");
                removed += 1;
            }
            (None, Some(vb)) => {
                let _ = writeln!(out, "+ {key} {vb}");
                added += 1;
            }
            (Some(va), Some(vb)) if va != vb => {
                let _ = writeln!(out, "~ {key} {va} -> {vb}");
                changed += 1;
            }
            _ => {}
        }
    }
    let _ = writeln!(
        out,
        "{added} series added, {removed} removed, {changed} changed"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use salamander_obs::{DeathCause, SimTime};

    fn rec(seq: u64, day: u32, op: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq,
            time: SimTime::new(day, op),
            event,
        }
    }

    fn sample_trace() -> Vec<TraceRecord> {
        vec![
            rec(
                0,
                0,
                0,
                TraceEvent::RunMarker {
                    label: "mode=ShrinkS".into(),
                },
            ),
            rec(
                1,
                1,
                100,
                TraceEvent::PageTired {
                    fpage: 5,
                    from: 0,
                    to: 1,
                },
            ),
            rec(
                2,
                1,
                150,
                TraceEvent::PageTired {
                    fpage: 6,
                    from: 0,
                    to: 1,
                },
            ),
            rec(
                3,
                2,
                200,
                TraceEvent::GcPass {
                    block: 1,
                    relocated: 32,
                },
            ),
            rec(
                4,
                2,
                250,
                TraceEvent::ReadRetry {
                    mdisk: 3,
                    retries: 2,
                },
            ),
            rec(
                5,
                3,
                300,
                TraceEvent::MdiskDecommissioned {
                    id: 3,
                    valid_lbas: 120,
                    draining: true,
                    cause: DecommissionCause::LevelShortfall,
                },
            ),
            rec(6, 4, 400, TraceEvent::MdiskPurged { id: 3 }),
            rec(7, 4, 410, TraceEvent::MdiskRegenerated { id: 9, level: 1 }),
            rec(
                8,
                5,
                500,
                TraceEvent::DeviceDied {
                    cause: DeathCause::FullyShrunk,
                },
            ),
        ]
    }

    #[test]
    fn segments_split_on_markers() {
        let trace = sample_trace();
        let segs = segments(&trace);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].label, "mode=ShrinkS");
        assert_eq!(segs[0].records.len(), 8);
        assert!(segments(&[]).is_empty());
    }

    #[test]
    fn lifecycle_reports_timeline_and_totals() {
        let text = lifecycle(&sample_trace(), None);
        assert!(text.contains("minidisk 3 decommissioned"), "{text}");
        assert!(text.contains("cause: LevelShortfall"), "{text}");
        assert!(text.contains("minidisk 3 purged"), "{text}");
        assert!(text.contains("minidisk 9 regenerated at L1"), "{text}");
        assert!(text.contains("device died (FullyShrunk)"), "{text}");
        assert!(text.contains("2 level transitions"), "{text}");
        assert!(text.contains("1 GC passes (32 oPages relocated)"), "{text}");
    }

    #[test]
    fn lifecycle_filters_by_mdisk_but_keeps_totals() {
        let text = lifecycle(&sample_trace(), Some(9));
        assert!(text.contains("minidisk 9 regenerated"), "{text}");
        assert!(!text.contains("minidisk 3 decommissioned"), "{text}");
        assert!(
            text.contains("2 level transitions"),
            "totals whole segment: {text}"
        );
    }

    #[test]
    fn why_explains_the_decommission() {
        let text = why(&sample_trace(), Some(3));
        assert!(text.contains("why: minidisk 3"), "{text}");
        assert!(text.contains("LevelShortfall"), "{text}");
        assert!(
            text.contains("page level transitions: 2 (L0→L1: 2)"),
            "{text}"
        );
        assert!(
            text.contains("GC passes: 1 (32 oPages relocated)"),
            "{text}"
        );
        assert!(text.contains("2 retries"), "{text}");
        assert!(text.contains("purged before ack"), "{text}");
        assert!(text.contains("minidisk 9 regenerated at L1"), "{text}");
        assert!(text.contains("device died (FullyShrunk)"), "{text}");
    }

    #[test]
    fn why_defaults_to_first_decommissioned() {
        let text = why(&sample_trace(), None);
        assert!(text.contains("why: minidisk 3"), "{text}");
    }

    #[test]
    fn why_reports_missing_mdisk_gracefully() {
        let text = why(&sample_trace(), Some(42));
        assert!(
            text.contains("minidisk 42 was never decommissioned"),
            "{text}"
        );
        assert!(text.contains("[3]"), "lists candidates: {text}");
        let none = why(&[], None);
        assert!(none.contains("no minidisk was decommissioned"), "{none}");
    }

    #[test]
    fn fleet_rollup_tables_and_csv() {
        let trace = vec![
            rec(
                0,
                10,
                0,
                TraceEvent::FleetDeviceDied {
                    device: 2,
                    cause: DeathCause::Wear,
                },
            ),
            rec(
                1,
                4,
                0,
                TraceEvent::FleetDeviceDied {
                    device: 7,
                    cause: DeathCause::Afr,
                },
            ),
            rec(2, 11, 0, TraceEvent::ChunkLost { chunk: 9 }),
            rec(
                3,
                12,
                0,
                TraceEvent::ChunkReReplicated {
                    chunk: 1,
                    bytes: 4096,
                },
            ),
        ];
        let table = fleet_rollup(&trace, false);
        assert!(table.contains("2 device deaths"), "{table}");
        assert!(table.contains("1 chunks lost"), "{table}");
        assert!(table.contains("4096 bytes re-replicated"), "{table}");
        let csv = fleet_rollup(&trace, true);
        // Sorted by device index, not emission order.
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "device,died_day,cause");
        assert_eq!(lines[1], "2,10,Wear");
        assert_eq!(lines[2], "7,4,Afr");
    }

    #[test]
    fn prom_parse_and_diff() {
        let a = "# TYPE x counter\nx_total 5\ng{day=\"1\"} 2\nonly_a 1\n";
        let b = "# TYPE x counter\nx_total 6\ng{day=\"1\"} 2\nonly_b 3\n";
        let parsed = parse_prom(a);
        assert_eq!(parsed.get("x_total").map(String::as_str), Some("5"));
        assert_eq!(parsed.len(), 3);
        let diff = diff_prom(a, b);
        assert!(diff.contains("~ x_total 5 -> 6"), "{diff}");
        assert!(diff.contains("- only_a 1"), "{diff}");
        assert!(diff.contains("+ only_b 3"), "{diff}");
        assert!(
            diff.contains("1 series added, 1 removed, 1 changed"),
            "{diff}"
        );
        let same = diff_prom(a, a);
        assert_eq!(same, "0 series added, 0 removed, 0 changed\n");
    }
}
