//! Rolling-window anomaly detection over deterministic metric streams
//! (DESIGN.md §11).
//!
//! A [`RollingZScore`] keeps the last `window` observations of one
//! series and flags a new observation whose z-score against that window
//! crosses the threshold — read-retry bursts, GC-pass frequency spikes,
//! and (population mode, via [`zscores`]) per-device wear-rate outliers
//! across a fleet. Records are typed [`Anomaly`] values with
//! milli-scaled integer statistics so the JSON form is byte-stable and
//! the type is `Eq`/`Ord`-friendly for deterministic aggregation.

use salamander_obs::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What kind of deviation a detector flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// A sample interval's read-retry delta spiked against the rolling
    /// window (leading indicator of wear, §2.1).
    ReadRetryBurst,
    /// GC-pass frequency spiked against the rolling window (write
    /// amplification pressure; often precedes a headroom shortfall).
    GcRateSpike,
    /// One device's capacity-loss rate is an outlier against the rest
    /// of its fleet (population z-score, not rolling).
    WearRateOutlier,
    /// A sampled day's death delta spiked against the rolling window of
    /// day-over-day fleet deaths (rollup-fed, see [`crate::fleet`]).
    FleetDeathSpike,
    /// The fleet's median wear fraction accelerated against the rolling
    /// window of day-over-day wear-p50 deltas (rollup-fed).
    FleetWearAccel,
    /// One op class's p99 latency jumped against the rolling window of
    /// day-over-day p99 deltas (latency-rollup-fed; the §4.2 multi-read
    /// tax arriving faster than the device's own history predicted).
    TailLatencyRegression,
    /// The recovery backlog grew (or recovery bytes spiked) against the
    /// rolling window of tick-over-tick deltas — failures arriving
    /// faster than repair bandwidth drains them (cluster-rollup-fed,
    /// see [`crate::fleet::cluster_scan`]).
    RecoveryStorm,
    /// A chunk ran out of replicas. Flagged on any `lost` increase,
    /// with no z-gate and no warm-up: data loss is never normal.
    DataLoss,
}

impl AnomalyKind {
    /// Stable lowercase name (metric label values).
    pub fn name(&self) -> &'static str {
        match self {
            AnomalyKind::ReadRetryBurst => "read_retry_burst",
            AnomalyKind::GcRateSpike => "gc_rate_spike",
            AnomalyKind::WearRateOutlier => "wear_rate_outlier",
            AnomalyKind::FleetDeathSpike => "fleet_death_spike",
            AnomalyKind::FleetWearAccel => "fleet_wear_accel",
            AnomalyKind::TailLatencyRegression => "tail_latency_regression",
            AnomalyKind::RecoveryStorm => "recovery_storm",
            AnomalyKind::DataLoss => "data_loss",
        }
    }
}

/// One detected anomaly. Statistics are ×1000 integers ("milli") so
/// the record is exactly representable, ordered, and byte-stable in
/// JSON — floats never appear, mirroring the obs event contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Anomaly {
    /// Simulation time of the offending observation.
    pub time: SimTime,
    /// What spiked.
    pub kind: AnomalyKind,
    /// Who: minidisk id for device-level series, device index for
    /// fleet-level series.
    pub subject: u32,
    /// Observed value ×1000.
    pub value_milli: i64,
    /// Window/population mean ×1000.
    pub mean_milli: i64,
    /// z-score ×1000 (clamped to ±1 000 000 000, i.e. |z| ≤ 10⁶).
    pub z_milli: i64,
}

/// Scale a statistic to its milli-integer form, clamping away
/// overflow/NaN so the conversion is total.
pub fn to_milli(x: f64) -> i64 {
    let scaled = x * 1000.0;
    if scaled.is_nan() {
        0
    } else {
        scaled.clamp(-1.0e15, 1.0e15).round() as i64
    }
}

/// Clamp bound for z-scores: a window of identical values gives an
/// effectively infinite z on any change; the clamp keeps the milli
/// encoding in range while preserving "very large".
const Z_CLAMP: f64 = 1.0e6;

/// Rolling-window z-score detector for one series.
#[derive(Debug, Clone, Default)]
pub struct RollingZScore {
    window: VecDeque<f64>,
    cap: usize,
    min_samples: usize,
    threshold: f64,
}

/// A flagged observation: `(mean, z)` of the window it deviated from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deviation {
    /// Mean of the rolling window (excluding the observation).
    pub mean: f64,
    /// z-score of the observation against the window.
    pub z: f64,
}

impl RollingZScore {
    /// A detector keeping `window` observations, reporting only after
    /// `min_samples` have been seen, flagging `z >= threshold`
    /// (one-sided: bursts, not lulls).
    pub fn new(window: usize, min_samples: usize, threshold: f64) -> Self {
        RollingZScore {
            window: VecDeque::with_capacity(window),
            cap: window.max(2),
            min_samples: min_samples.max(2),
            threshold,
        }
    }

    /// The defaults the monitors use: a 16-sample window, 8 samples of
    /// warm-up, and the classic 3σ threshold.
    pub fn standard() -> Self {
        Self::new(16, 8, 3.0)
    }

    /// Fold in one observation; `Some` when it deviates. The
    /// observation always enters the window afterwards (a burst
    /// becomes the new normal rather than re-flagging forever).
    pub fn observe(&mut self, x: f64) -> Option<Deviation> {
        let flagged = if self.window.len() >= self.min_samples {
            let (mean, std) = mean_std(self.window.iter().copied());
            // A dead-flat window has σ=0; fall back to an absolute
            // guard so the first activity after long silence still
            // registers (clamped z), but noise-free equality does not.
            let z = if std > 0.0 {
                ((x - mean) / std).clamp(-Z_CLAMP, Z_CLAMP)
            } else if x > mean {
                Z_CLAMP
            } else {
                0.0
            };
            (z >= self.threshold).then_some(Deviation { mean, z })
        } else {
            None
        };
        if self.window.len() == self.cap {
            self.window.pop_front();
        }
        self.window.push_back(x);
        flagged
    }
}

/// Mean and population standard deviation, accumulated in iteration
/// order (fixed order ⇒ bit-stable).
fn mean_std(values: impl Iterator<Item = f64> + Clone) -> (f64, f64) {
    let mut n = 0u64;
    let mut sum = 0.0f64;
    for v in values.clone() {
        n += 1;
        sum += v;
    }
    if n == 0 {
        return (0.0, 0.0);
    }
    let mean = sum / n as f64;
    let mut var = 0.0f64;
    for v in values {
        let d = v - mean;
        var += d * d;
    }
    (mean, (var / n as f64).sqrt())
}

/// Population z-scores for a whole slice at once (fleet-level outlier
/// scan): returns `(mean, std, z[i])` with z clamped like the rolling
/// detector. A population with σ=0 has no outliers by definition.
pub fn zscores(values: &[f64]) -> (f64, f64, Vec<f64>) {
    let (mean, std) = mean_std(values.iter().copied());
    let z = values
        .iter()
        .map(|&v| {
            if std > 0.0 {
                ((v - mean) / std).clamp(-Z_CLAMP, Z_CLAMP)
            } else {
                0.0
            }
        })
        .collect();
    (mean, std, z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_series_never_flags() {
        let mut d = RollingZScore::standard();
        for _ in 0..100 {
            assert!(d.observe(5.0).is_none());
        }
    }

    #[test]
    fn burst_after_warmup_flags_once_then_adapts() {
        let mut d = RollingZScore::new(8, 4, 3.0);
        for _ in 0..8 {
            assert!(d.observe(10.0).is_none());
        }
        let dev = d.observe(1000.0).expect("burst should flag");
        assert_eq!(dev.mean, 10.0);
        assert!(dev.z >= 3.0);
        // The burst joined the window: a second equal burst has a real
        // σ to compare against and a much smaller z.
        let again = d.observe(1000.0);
        assert!(again.is_none() || again.unwrap().z < dev.z);
    }

    #[test]
    fn no_flag_before_warmup() {
        let mut d = RollingZScore::new(8, 4, 3.0);
        assert!(d.observe(0.0).is_none());
        assert!(d.observe(1_000_000.0).is_none(), "only 1 prior sample");
    }

    #[test]
    fn lulls_are_not_bursts() {
        let mut d = RollingZScore::new(8, 4, 3.0);
        for i in 0..8 {
            d.observe(100.0 + (i % 2) as f64);
        }
        assert!(d.observe(0.0).is_none(), "one-sided: drops don't flag");
    }

    #[test]
    fn population_zscores_flag_the_outlier() {
        let mut v = vec![10.0; 9];
        v.push(40.0);
        let (mean, std, z) = zscores(&v);
        assert!(mean > 10.0 && std > 0.0);
        assert!(z[9] > 2.9, "outlier z = {}", z[9]);
        assert!(z[0] < 0.0);
    }

    #[test]
    fn uniform_population_has_no_outliers() {
        let (_, std, z) = zscores(&[7.0; 12]);
        assert_eq!(std, 0.0);
        assert!(z.iter().all(|&z| z == 0.0));
    }

    #[test]
    fn to_milli_is_total() {
        assert_eq!(to_milli(1.5), 1500);
        assert_eq!(to_milli(-0.25), -250);
        assert_eq!(to_milli(f64::NAN), 0);
        assert_eq!(to_milli(f64::INFINITY), 1_000_000_000_000_000);
    }

    #[test]
    fn anomaly_round_trips_and_orders() {
        let a = Anomaly {
            time: SimTime::new(3, 70),
            kind: AnomalyKind::GcRateSpike,
            subject: 2,
            value_milli: 9000,
            mean_milli: 1000,
            z_milli: 4500,
        };
        let json = serde_json::to_string(&a).unwrap();
        let back: Anomaly = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
        let earlier = Anomaly {
            time: SimTime::new(1, 0),
            ..a
        };
        assert!(earlier < a, "time-first ordering");
    }
}
