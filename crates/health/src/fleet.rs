//! Rollup-fed fleet anomaly scan (DESIGN.md §11/§14).
//!
//! The per-device monitors in [`crate::monitor`] watch one device's
//! trace; this module watches the whole fleet through its per-day
//! [`FleetRollup`] series. Two rolling z-score detectors run over the
//! day-over-day deltas:
//!
//! - **death rate** — new deaths per sampled day (wear + AFR). A spike
//!   against the rolling window flags a cohort hitting its wear cliff
//!   or a correlated failure burst.
//! - **wear rate** — movement of the fleet's median wear fraction
//!   (`wear_p50`, permille). Acceleration flags a workload shift
//!   driving the whole population toward its endurance budget faster
//!   than its own history predicted.
//!
//! Input and output are deterministic artifacts (integer rollups in,
//! milli-scaled [`Anomaly`] records out), so the scan inherits the obs
//! layer's byte-identity across engines and thread counts.

use crate::anomaly::{to_milli, Anomaly, AnomalyKind, RollingZScore};
use salamander_obs::{ClusterRollup, FleetRollup, LatencyRollup, SimTime, LAT_CLASSES};

/// Fleet-wide anomaly subject: there is no single device to blame.
pub const FLEET_SUBJECT: u32 = u32::MAX;

/// Scan a chronological rollup series for death-rate spikes and
/// wear-rate acceleration. Detectors are [`RollingZScore::standard`]
/// (16-sample window, 8 warm-up, 3σ), so a steady death or wear rate —
/// even a high one — never flags; only deviation from the series' own
/// recent history does.
pub fn fleet_scan<'a>(rollups: impl IntoIterator<Item = &'a FleetRollup>) -> Vec<Anomaly> {
    let mut out = Vec::new();
    let mut death_det = RollingZScore::standard();
    let mut wear_det = RollingZScore::standard();
    let mut prev_dead: Option<u32> = None;
    let mut prev_wear: Option<u64> = None;
    for r in rollups {
        if let Some(p) = prev_dead {
            let delta = f64::from(r.dead().saturating_sub(p));
            if let Some(dev) = death_det.observe(delta) {
                out.push(Anomaly {
                    time: SimTime::new(r.day, 0),
                    kind: AnomalyKind::FleetDeathSpike,
                    subject: FLEET_SUBJECT,
                    value_milli: to_milli(delta),
                    mean_milli: to_milli(dev.mean),
                    z_milli: to_milli(dev.z),
                });
            }
        }
        prev_dead = Some(r.dead());
        if let Some(wear) = r.series_value("wear_p50") {
            if let Some(p) = prev_wear {
                let delta = wear.saturating_sub(p) as f64;
                if let Some(dev) = wear_det.observe(delta) {
                    out.push(Anomaly {
                        time: SimTime::new(r.day, 0),
                        kind: AnomalyKind::FleetWearAccel,
                        subject: FLEET_SUBJECT,
                        value_milli: to_milli(delta),
                        mean_milli: to_milli(dev.mean),
                        z_milli: to_milli(dev.z),
                    });
                }
            }
            prev_wear = Some(wear);
        }
    }
    out.sort();
    out
}

/// Scan a chronological latency-rollup series for tail-latency
/// regressions: per op class, a rolling z-score over the day-over-day
/// p99 deltas (nanoseconds). A steady tail — even a slow one — never
/// flags; a jump against the class's own recent history does (the §4.2
/// multi-read tax landing, a retry storm, a GC stall pile-up). The
/// anomaly subject is the class index into [`LAT_CLASSES`]. Floats
/// appear only here, after the integer rollups were merged, so the
/// output inherits their byte-identity.
pub fn latency_scan<'a>(rollups: impl IntoIterator<Item = &'a LatencyRollup>) -> Vec<Anomaly> {
    let mut out = Vec::new();
    let mut dets: Vec<RollingZScore> = (0..LAT_CLASSES.len())
        .map(|_| RollingZScore::standard())
        .collect();
    let mut prev: Vec<Option<u64>> = vec![None; LAT_CLASSES.len()];
    for r in rollups {
        for (ci, class) in LAT_CLASSES.iter().enumerate() {
            let Some(p99) = r.stat(class, "p99") else {
                continue;
            };
            if let Some(p) = prev[ci] {
                // Signed delta: improvements enter the window too, but
                // the one-sided detector only ever flags regressions.
                let delta = p99 as f64 - p as f64;
                if let Some(dev) = dets[ci].observe(delta) {
                    out.push(Anomaly {
                        time: SimTime::new(r.day, 0),
                        kind: AnomalyKind::TailLatencyRegression,
                        subject: ci as u32,
                        value_milli: to_milli(delta),
                        mean_milli: to_milli(dev.mean),
                        z_milli: to_milli(dev.z),
                    });
                }
            }
            prev[ci] = Some(p99);
        }
    }
    out.sort();
    out
}

/// Scan a chronological cluster-rollup series (DESIGN.md §16) for
/// durability trouble:
///
/// - **recovery storms** — the backlog's tick-over-tick growth, or the
///   tick's repair-byte volume, spikes against its own rolling window
///   ([`RollingZScore::standard`]): failures arriving faster than the
///   repair bandwidth drains them. Signed deltas enter the window, so
///   a backlog draining back down never flags.
/// - **data loss** — any increase of the cumulative `lost` count flags
///   [`AnomalyKind::DataLoss`] immediately, with no z-gate and no
///   warm-up: data loss is never normal, however early in the run.
pub fn cluster_scan<'a>(rollups: impl IntoIterator<Item = &'a ClusterRollup>) -> Vec<Anomaly> {
    let mut out = Vec::new();
    let mut backlog_det = RollingZScore::standard();
    let mut repair_det = RollingZScore::standard();
    let mut prev: Option<(u64, u64, u64)> = None;
    for r in rollups {
        if let Some((backlog, repair, lost)) = prev {
            let growth = r.backlog_chunks as f64 - backlog as f64;
            if let Some(dev) = backlog_det.observe(growth) {
                out.push(Anomaly {
                    time: SimTime::new(r.day, 0),
                    kind: AnomalyKind::RecoveryStorm,
                    subject: FLEET_SUBJECT,
                    value_milli: to_milli(growth),
                    mean_milli: to_milli(dev.mean),
                    z_milli: to_milli(dev.z),
                });
            }
            let bytes = r.repair_bytes.saturating_sub(repair) as f64;
            if let Some(dev) = repair_det.observe(bytes) {
                out.push(Anomaly {
                    time: SimTime::new(r.day, 0),
                    kind: AnomalyKind::RecoveryStorm,
                    subject: FLEET_SUBJECT,
                    value_milli: to_milli(bytes),
                    mean_milli: to_milli(dev.mean),
                    z_milli: to_milli(dev.z),
                });
            }
            let lost_delta = r.lost.saturating_sub(lost);
            if lost_delta > 0 {
                out.push(Anomaly {
                    time: SimTime::new(r.day, 0),
                    kind: AnomalyKind::DataLoss,
                    subject: FLEET_SUBJECT,
                    value_milli: to_milli(lost_delta as f64),
                    mean_milli: 0,
                    z_milli: 0,
                });
            }
        } else if r.lost > 0 {
            // Losses already on the books at the first rollup count too.
            out.push(Anomaly {
                time: SimTime::new(r.day, 0),
                kind: AnomalyKind::DataLoss,
                subject: FLEET_SUBJECT,
                value_milli: to_milli(r.lost as f64),
                mean_milli: 0,
                z_milli: 0,
            });
        }
        prev = Some((r.backlog_chunks, r.repair_bytes, r.lost));
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use salamander_obs::DIST_BUCKETS;

    fn rollup(day: u32, dead: u32, wear_bucket: usize) -> FleetRollup {
        let mut wear = vec![0u32; DIST_BUCKETS];
        wear[wear_bucket] = 100;
        FleetRollup {
            day,
            alive: 100 - dead,
            dead_wear: dead,
            dead_afr: 0,
            dying: 0,
            capacity_opages: 1000,
            wear,
            pec: vec![0; DIST_BUCKETS],
            usable: vec![0; DIST_BUCKETS],
            health: vec![0; DIST_BUCKETS],
        }
    }

    #[test]
    fn steady_fleet_never_flags() {
        // One death per day; median wear oscillating between two
        // adjacent buckets (steady jitter, not a trend). Neither delta
        // series ever deviates from its own window.
        let series: Vec<FleetRollup> = (0..40)
            .map(|i| rollup(i * 30, i, 5 + (i as usize % 2)))
            .collect();
        assert!(fleet_scan(series.iter()).is_empty());
    }

    #[test]
    fn death_spike_flags_with_day_and_kind() {
        let mut series: Vec<FleetRollup> = (0..20).map(|i| rollup(i * 30, i, 2)).collect();
        // Day 600: 30 devices die at once against a 1/day baseline.
        series.push(rollup(600, 49, 2));
        let anomalies = fleet_scan(series.iter());
        assert_eq!(anomalies.len(), 1, "{anomalies:?}");
        let a = &anomalies[0];
        assert_eq!(a.kind, AnomalyKind::FleetDeathSpike);
        assert_eq!(a.time.day, 600);
        assert_eq!(a.subject, FLEET_SUBJECT);
        assert_eq!(a.value_milli, 30_000);
        assert!(a.z_milli >= 3000, "{a:?}");
    }

    #[test]
    fn wear_acceleration_flags() {
        // Median wear advances one bucket (50‰) every day, then jumps
        // eight buckets in one sample interval.
        let mut series: Vec<FleetRollup> = (0..15).map(|i| rollup(i * 30, 0, i as usize)).collect();
        series.push(rollup(450, 0, 19));
        let anomalies = fleet_scan(series.iter());
        assert_eq!(anomalies.len(), 1, "{anomalies:?}");
        assert_eq!(anomalies[0].kind, AnomalyKind::FleetWearAccel);
        assert_eq!(anomalies[0].time.day, 450);
    }

    #[test]
    fn empty_and_short_series_are_quiet() {
        assert!(fleet_scan([].iter()).is_empty());
        let short: Vec<FleetRollup> = (0..5).map(|i| rollup(i * 30, i * 10, 1)).collect();
        assert!(fleet_scan(short.iter()).is_empty(), "below warm-up");
    }

    /// A latency rollup whose host-read p99 lands exactly at `ns` (one
    /// sample per rollup: every percentile is that sample's bucket).
    fn lat_rollup(day: u32, host_read_ns: u64) -> LatencyRollup {
        let mut r = LatencyRollup::empty(day);
        r.classes[0].observe(host_read_ns, 1);
        r
    }

    #[test]
    fn steady_tail_never_flags() {
        // p99 jittering between two adjacent buckets: steady noise is
        // not an anomaly (the ±one-bucket deltas are the window's own
        // history), and neither is the flat stretch in between.
        let series: Vec<LatencyRollup> = (0..30)
            .map(|i| lat_rollup(i, if i % 2 == 0 { 70_000 } else { 75_000 }))
            .collect();
        assert!(latency_scan(series.iter()).is_empty());
    }

    #[test]
    fn p99_jump_flags_the_class() {
        let mut series: Vec<LatencyRollup> = (0..20).map(|i| lat_rollup(i, 61_440)).collect();
        // Day 20: host-read p99 jumps 4x against a flat history.
        series.push(lat_rollup(20, 245_760));
        let anomalies = latency_scan(series.iter());
        assert_eq!(anomalies.len(), 1, "{anomalies:?}");
        let a = &anomalies[0];
        assert_eq!(a.kind, AnomalyKind::TailLatencyRegression);
        assert_eq!(a.time.day, 20);
        assert_eq!(a.subject, 0, "subject is the LAT_CLASSES index");
        assert!(a.z_milli >= 3000, "{a:?}");
    }

    #[test]
    fn latency_improvements_never_flag() {
        let mut series: Vec<LatencyRollup> = (0..20).map(|i| lat_rollup(i, 245_760)).collect();
        series.push(lat_rollup(20, 61_440));
        assert!(latency_scan(series.iter()).is_empty(), "one-sided");
    }

    #[test]
    fn empty_latency_series_is_quiet() {
        assert!(latency_scan([].iter()).is_empty());
        let sparse: Vec<LatencyRollup> = (0..30).map(LatencyRollup::empty).collect();
        assert!(latency_scan(sparse.iter()).is_empty(), "no samples, no p99");
    }

    fn cluster(day: u32, backlog: u64, repair: u64, lost: u64) -> ClusterRollup {
        let mut r = ClusterRollup::empty(day);
        r.backlog_chunks = backlog;
        r.repair_bytes = repair;
        r.lost = lost;
        r
    }

    #[test]
    fn steady_recovery_never_flags() {
        // A constant trickle: backlog flat at 4, repair bytes growing a
        // fixed amount per tick. Neither delta series deviates.
        let series: Vec<ClusterRollup> = (0..30)
            .map(|i| cluster(i, 4, u64::from(i) * 1024, 0))
            .collect();
        assert!(cluster_scan(series.iter()).is_empty());
    }

    #[test]
    fn backlog_growth_spike_flags_recovery_storm() {
        let mut series: Vec<ClusterRollup> = (0..20)
            .map(|i| cluster(i, 4 + u64::from(i % 2), 0, 0))
            .collect();
        // Tick 20: a whole device's chunks land in the backlog at once.
        series.push(cluster(20, 500, 0, 0));
        let anomalies = cluster_scan(series.iter());
        assert_eq!(anomalies.len(), 1, "{anomalies:?}");
        let a = &anomalies[0];
        assert_eq!(a.kind, AnomalyKind::RecoveryStorm);
        assert_eq!(a.time.day, 20);
        assert_eq!(a.subject, FLEET_SUBJECT);
        assert!(a.z_milli >= 3000, "{a:?}");
    }

    #[test]
    fn repair_byte_spike_flags_recovery_storm() {
        let mut series: Vec<ClusterRollup> = (0..20)
            .map(|i| cluster(i, 0, u64::from(i) * 1024 + u64::from(i % 2) * 256, 0))
            .collect();
        // Tick 20: a repair burst two orders beyond the steady trickle.
        series.push(cluster(20, 0, 20 * 1024 + (1 << 22), 0));
        let anomalies = cluster_scan(series.iter());
        assert_eq!(anomalies.len(), 1, "{anomalies:?}");
        assert_eq!(anomalies[0].kind, AnomalyKind::RecoveryStorm);
        assert_eq!(anomalies[0].time.day, 20);
    }

    #[test]
    fn any_loss_flags_immediately_without_warmup() {
        // Two rollups only — far below the z-detectors' warm-up.
        let series = [cluster(0, 0, 0, 0), cluster(1, 0, 0, 2)];
        let anomalies = cluster_scan(series.iter());
        assert_eq!(anomalies.len(), 1, "{anomalies:?}");
        let a = &anomalies[0];
        assert_eq!(a.kind, AnomalyKind::DataLoss);
        assert_eq!(a.time.day, 1);
        assert_eq!(a.value_milli, 2000, "two chunks lost");
        // And a loss already on the books at the first rollup counts.
        let head = [cluster(5, 0, 0, 1)];
        let anomalies = cluster_scan(head.iter());
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].kind, AnomalyKind::DataLoss);
        assert_eq!(anomalies[0].time.day, 5);
    }

    #[test]
    fn empty_cluster_series_is_quiet() {
        assert!(cluster_scan([].iter()).is_empty());
        let flat: Vec<ClusterRollup> = (0..30).map(|i| cluster(i, 0, 0, 0)).collect();
        assert!(cluster_scan(flat.iter()).is_empty());
    }
}
