//! `salamander-health` — deterministic health analytics over the obs
//! telemetry (DESIGN.md §11).
//!
//! The obs layer (DESIGN.md §9) records *what happened*; this crate
//! answers *how is the device doing and what happens next*:
//!
//! - [`forecast`]: EWMA wear-rate estimates over SMART samples and
//!   first-order projections of the next forced shrink and device
//!   death — pure simulation-time arithmetic, bit-identical across
//!   machines and thread counts.
//! - [`anomaly`]: rolling-window z-score detectors (read-retry bursts,
//!   GC-rate spikes) and population z-scores (fleet wear-rate
//!   outliers), emitting typed [`Anomaly`] records with milli-scaled
//!   integer statistics.
//! - [`fleet`]: rollup-fed fleet anomaly scan — rolling z-scores over
//!   day-over-day death and median-wear deltas from the per-day
//!   [`salamander_obs::FleetRollup`] series (DESIGN.md §14).
//! - [`monitor`]: [`HealthMonitor`] folds SMART samples and trace
//!   records into a [`HealthReport`] — device score, per-minidisk
//!   health, projections, anomalies — rendered as
//!   `salamander_health_*` gauges.
//! - [`query`]: offline trace queries (`lifecycle`, `why`, fleet
//!   rollups, timelines, percentiles, day drill-downs, Prometheus
//!   diffs) as pure record-to-string functions; the `obsctl` CLI is a
//!   thin argv wrapper around them.
//!
//! The crate is a read-only consumer: it never influences simulation
//! state, so enabling it cannot change any simulated outcome, and every
//! analytics product inherits the obs layer's determinism guarantee.

pub mod anomaly;
pub mod fleet;
pub mod forecast;
pub mod monitor;
pub mod query;

pub use anomaly::{to_milli, zscores, Anomaly, AnomalyKind, Deviation, RollingZScore};
pub use fleet::{cluster_scan, fleet_scan, latency_scan, FLEET_SUBJECT};
pub use forecast::{project, Ewma, WearForecaster, EWMA_ALPHA};
pub use monitor::{
    HealthMonitor, HealthReport, HealthUnit, MdiskHealth, MdiskState, DEVICE_SUBJECT,
};
