//! `salamander-telemetry` — the live telemetry plane (DESIGN.md §12).
//!
//! A tiny blocking HTTP/1.1 server (`std::net::TcpListener`, zero
//! dependencies beyond `salamander-obs`) that a running simulation
//! attaches to via a [`LiveObs`] mirror. It is a read-only observer on
//! its own threads: every byte it serves comes from the mirror
//! structures in [`salamander_obs::live`], which the deterministic
//! pipeline writes into but never reads back — so `results/` CSVs,
//! traces, and metrics are byte-identical with the server on or off
//! (enforced by the serve-determinism suite).
//!
//! Endpoints:
//!
//! | path                | body                                             |
//! |---------------------|--------------------------------------------------|
//! | `GET /metrics`      | Prometheus text: the live registry mid-run, the exact `--metrics` file bytes once the run finished |
//! | `GET /healthz`      | liveness JSON (`{"status":"ok",...}`)            |
//! | `GET /health`       | JSON map of run label → `HealthReport` (published at end of run) |
//! | `GET /trace/tail`   | NDJSON of the most recent `?n=K` records (default 100) |
//! | `GET /trace/stream` | NDJSON long-poll from `?from=<cursor>`; the next cursor comes back in an `X-Next-Cursor` header |
//! | `GET /progress`     | sim day / ops / device counts / per-mode days / rollup day counts / wall-clock ops-per-sec |
//! | `GET /fleet`        | JSON snapshot: per-label rollup day count plus the latest [`FleetRollup`] |
//! | `GET /fleet/series` | `?metric=<name>[&fleet=<label>]`: per-label `[day, value]` series over the published rollups (metric names per [`FleetRollup::series_value`]) |
//! | `GET /latency`      | JSON snapshot: per-label latency-rollup day count, latest per-class tail stats, and tail-regression anomalies (DESIGN.md §15) |
//! | `GET /latency/series` | `?class=<op-class>&stat=<p50\|p90\|p99\|p999\|mean\|count>[&fleet=<label>]`: per-label `[day, ns]` series over the published latency rollups |
//! | `GET /cluster`      | JSON snapshot: per-label cluster-rollup tick count, the latest [`ClusterRollup`], exposure-window percentiles, and recovery anomalies (DESIGN.md §16) |
//! | `GET /cluster/series` | `?metric=<name>[&fleet=<label>]`: per-label `[tick, value]` series over the published cluster rollups (metric names per [`ClusterRollup::series_value`]) |
//! | `GET /quit`         | asks the host process to stop lingering          |
//!
//! The server holds no locks while blocked on I/O except the bounded
//! condvar wait inside [`Broadcast::poll_after`], and it cannot slow
//! the simulation beyond momentary mirror-lock contention.

use salamander_obs::{
    trace::to_jsonl, ClusterRollup, FleetRollup, LatencyRollup, LiveObs, EXPOSURE_STATS,
    LAT_CLASSES,
};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

pub use salamander_obs::live::json_string;

/// How long `/trace/stream` blocks waiting for new records before
/// returning an empty poll.
pub const STREAM_POLL_TIMEOUT: Duration = Duration::from_secs(10);
/// Default record count for `/trace/tail`.
pub const DEFAULT_TAIL: usize = 100;

/// Shared state between the simulation side (which publishes) and the
/// server side (which serves). The simulation owns one, wrapped in an
/// [`Arc`], for the whole run.
pub struct TelemetryHub {
    /// The live mirror the simulation writes into.
    pub live: LiveObs,
    /// Run name (the binary's artifact name, e.g. `lifetime`).
    pub run: String,
    /// Run label → serialized `HealthReport` JSON, published as runs
    /// finish. Pre-serialized by the publisher so this crate needs no
    /// knowledge of the health types.
    health: Mutex<BTreeMap<String, String>>,
    /// Run label → per-day fleet rollups, published as fleet runs
    /// finish (the deterministic artifacts; `/fleet` and
    /// `/fleet/series` are pure views over them).
    fleet: Mutex<BTreeMap<String, Vec<FleetRollup>>>,
    /// Run label → (per-day latency rollups, pre-serialized JSON array
    /// of tail-regression anomalies). Published as runs finish;
    /// `/latency` and `/latency/series` are pure views over them. The
    /// anomalies are pre-serialized by the publisher (like `health`) so
    /// this crate needs no knowledge of the health types.
    latency: Mutex<BTreeMap<String, (Vec<LatencyRollup>, String)>>,
    /// Run label → (per-tick cluster rollups, pre-serialized JSON
    /// array of recovery anomalies). Published as runs finish;
    /// `/cluster` and `/cluster/series` are pure views over them.
    cluster: Mutex<BTreeMap<String, (Vec<ClusterRollup>, String)>>,
    /// The exact rendered metrics text the run wrote (or would write)
    /// at exit. Once set, `/metrics` serves these bytes verbatim, so a
    /// final scrape equals the `--metrics` file byte-for-byte.
    final_metrics: Mutex<Option<String>>,
    done: AtomicBool,
    quit: AtomicBool,
}

impl TelemetryHub {
    /// A hub for one run.
    pub fn new(run: &str, live: LiveObs) -> Arc<TelemetryHub> {
        Arc::new(TelemetryHub {
            live,
            run: run.to_string(),
            health: Mutex::new(BTreeMap::new()),
            fleet: Mutex::new(BTreeMap::new()),
            latency: Mutex::new(BTreeMap::new()),
            cluster: Mutex::new(BTreeMap::new()),
            final_metrics: Mutex::new(None),
            done: AtomicBool::new(false),
            quit: AtomicBool::new(false),
        })
    }

    /// Publish one run label's `HealthReport`, pre-serialized to JSON.
    pub fn publish_health(&self, label: &str, report_json: String) {
        self.health
            .lock()
            .expect("health lock")
            .insert(label.to_string(), report_json);
    }

    /// Publish one run label's per-day fleet rollups, replacing any
    /// previous set for that label.
    pub fn publish_rollups(&self, label: &str, rollups: Vec<FleetRollup>) {
        self.fleet
            .lock()
            .expect("fleet lock")
            .insert(label.to_string(), rollups);
    }

    /// Publish one run label's per-day latency rollups plus a
    /// pre-serialized JSON array of tail-regression anomalies (from
    /// `salamander_health::latency_scan`; pass `"[]"` when the scan
    /// found nothing), replacing any previous set for that label.
    pub fn publish_latency(
        &self,
        label: &str,
        rollups: Vec<LatencyRollup>,
        regressions_json: String,
    ) {
        self.latency
            .lock()
            .expect("latency lock")
            .insert(label.to_string(), (rollups, regressions_json));
    }

    /// Publish the final metrics text and mark the run finished. The
    /// broadcast closes so `/trace/stream` pollers drain and return.
    pub fn mark_done(&self, final_metrics: Option<String>) {
        if let Some(text) = final_metrics {
            *self.final_metrics.lock().expect("final metrics lock") = Some(text);
        }
        self.done.store(true, Ordering::SeqCst);
        self.live.trace.close();
    }

    /// Whether [`TelemetryHub::mark_done`] was called.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::SeqCst)
    }

    /// Whether a client hit `/quit` (the host process should stop
    /// lingering).
    pub fn quit_requested(&self) -> bool {
        self.quit.load(Ordering::SeqCst)
    }

    /// The `/metrics` body: the published final text verbatim if the
    /// run finished, the live mirror otherwise.
    fn metrics_body(&self) -> String {
        if let Some(text) = self
            .final_metrics
            .lock()
            .expect("final metrics lock")
            .as_ref()
        {
            return text.clone();
        }
        self.live.render_metrics()
    }

    /// The `/health` body: `{"run":...,"done":...,"reports":{label:report}}`.
    /// Hand-assembled — the values are pre-serialized JSON documents.
    fn health_body(&self) -> String {
        let reports = self.health.lock().expect("health lock");
        let mut body = format!(
            "{{\"run\":{},\"done\":{},\"reports\":{{",
            json_string(&self.run),
            self.is_done()
        );
        for (i, (label, json)) in reports.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&json_string(label));
            body.push(':');
            body.push_str(json);
        }
        body.push_str("}}");
        body
    }

    /// The `/healthz` liveness body.
    fn healthz_body(&self) -> String {
        format!(
            "{{\"status\":\"ok\",\"run\":{},\"done\":{}}}",
            json_string(&self.run),
            self.is_done()
        )
    }

    /// The `/progress` body: the live counters, plus — once fleet
    /// rollups are published — a `rollup_days` object mapping each
    /// label to how many sampled days its rollup series covers.
    fn progress_body(&self) -> String {
        let mut body = self.live.progress.render_json(&self.run, self.is_done());
        let fleets = self.fleet.lock().expect("fleet lock");
        if !fleets.is_empty() {
            // render_json always ends with a closing brace; splice the
            // extra field in before it.
            body.pop();
            body.push_str(",\"rollup_days\":{");
            for (i, (label, rollups)) in fleets.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&json_string(label));
                body.push(':');
                body.push_str(&rollups.len().to_string());
            }
            body.push_str("}}");
        }
        body
    }

    /// The `/fleet` body: per-label day count plus the latest rollup
    /// record (serialized via serde, same shape as the JSONL trace
    /// form).
    fn fleet_body(&self) -> String {
        let fleets = self.fleet.lock().expect("fleet lock");
        let mut body = format!(
            "{{\"run\":{},\"done\":{},\"fleets\":{{",
            json_string(&self.run),
            self.is_done()
        );
        for (i, (label, rollups)) in fleets.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&json_string(label));
            body.push_str(":{\"days\":");
            body.push_str(&rollups.len().to_string());
            body.push_str(",\"latest\":");
            match rollups.last().and_then(|r| serde_json::to_string(r).ok()) {
                Some(json) => body.push_str(&json),
                None => body.push_str("null"),
            }
            body.push('}');
        }
        body.push_str("}}");
        body
    }

    /// The `/fleet/series` body: per-label `[day, value]` pairs for
    /// `metric` (optionally restricted to one label). `None` when the
    /// metric name is unknown — the handler turns that into a 400.
    /// Records whose distribution is empty contribute gaps, not
    /// errors.
    fn fleet_series_body(&self, metric: &str, only: Option<&str>) -> Option<String> {
        if !valid_series_metric(metric) {
            return None;
        }
        let fleets = self.fleet.lock().expect("fleet lock");
        let mut body = format!("{{\"metric\":{},\"series\":{{", json_string(metric));
        let mut wrote = false;
        for (label, rollups) in fleets.iter() {
            if only.is_some_and(|f| f != label.as_str()) {
                continue;
            }
            let points: Vec<String> = rollups
                .iter()
                .filter_map(|r| r.series_value(metric).map(|v| format!("[{},{v}]", r.day)))
                .collect();
            if wrote {
                body.push(',');
            }
            body.push_str(&json_string(label));
            body.push_str(":[");
            body.push_str(&points.join(","));
            body.push(']');
            wrote = true;
        }
        body.push_str("}}");
        Some(body)
    }

    /// The `/latency` body: per-label sampled-day count, the latest
    /// non-empty rollup's per-class tail stats (classes with zero
    /// samples are omitted — the fleet path never populates gc/scrub/
    /// regen, DESIGN.md §15), and the publisher's tail-regression
    /// anomalies verbatim.
    fn latency_body(&self) -> String {
        let lats = self.latency.lock().expect("latency lock");
        let mut body = format!(
            "{{\"run\":{},\"done\":{},\"classes\":[",
            json_string(&self.run),
            self.is_done()
        );
        for (i, class) in LAT_CLASSES.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&json_string(class));
        }
        body.push_str("],\"latencies\":{");
        for (i, (label, (rollups, regressions))) in lats.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&json_string(label));
            body.push_str(":{\"days\":");
            body.push_str(&rollups.len().to_string());
            match rollups.iter().rev().find(|r| !r.is_empty()) {
                Some(r) => {
                    body.push_str(",\"latest_day\":");
                    body.push_str(&r.day.to_string());
                    body.push_str(",\"latest\":{");
                    let mut wrote = false;
                    for class in LAT_CLASSES {
                        let count = r.stat(class, "count").unwrap_or(0);
                        if count == 0 {
                            continue;
                        }
                        if wrote {
                            body.push(',');
                        }
                        body.push_str(&json_string(class));
                        body.push_str(&format!(
                            ":{{\"count\":{count},\"mean_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"p999_ns\":{}}}",
                            r.stat(class, "mean").unwrap_or(0),
                            r.stat(class, "p50").unwrap_or(0),
                            r.stat(class, "p90").unwrap_or(0),
                            r.stat(class, "p99").unwrap_or(0),
                            r.stat(class, "p999").unwrap_or(0),
                        ));
                        wrote = true;
                    }
                    body.push('}');
                }
                None => body.push_str(",\"latest_day\":null,\"latest\":{}"),
            }
            body.push_str(",\"regressions\":");
            body.push_str(regressions);
            body.push('}');
        }
        body.push_str("}}");
        body
    }

    /// The `/latency/series` body: per-label `[day, ns]` pairs for one
    /// `(class, stat)` (optionally restricted to one label). `None`
    /// when either name is unknown — the handler turns that into a
    /// 400. Days whose distribution is empty contribute gaps, not
    /// errors.
    fn latency_series_body(&self, class: &str, stat: &str, only: Option<&str>) -> Option<String> {
        if !valid_latency_series(class, stat) {
            return None;
        }
        let lats = self.latency.lock().expect("latency lock");
        let mut body = format!(
            "{{\"class\":{},\"stat\":{},\"series\":{{",
            json_string(class),
            json_string(stat)
        );
        let mut wrote = false;
        for (label, (rollups, _)) in lats.iter() {
            if only.is_some_and(|f| f != label.as_str()) {
                continue;
            }
            let points: Vec<String> = rollups
                .iter()
                .filter(|r| !r.is_empty())
                .filter_map(|r| r.stat(class, stat).map(|v| format!("[{},{v}]", r.day)))
                .collect();
            if wrote {
                body.push(',');
            }
            body.push_str(&json_string(label));
            body.push_str(":[");
            body.push_str(&points.join(","));
            body.push(']');
            wrote = true;
        }
        body.push_str("}}");
        Some(body)
    }

    /// Publish one run label's per-tick cluster rollups plus a
    /// pre-serialized JSON array of recovery anomalies (from
    /// `salamander_health::cluster_scan`; pass `"[]"` when the scan
    /// found nothing), replacing any previous set for that label.
    pub fn publish_cluster(
        &self,
        label: &str,
        rollups: Vec<ClusterRollup>,
        anomalies_json: String,
    ) {
        self.cluster
            .lock()
            .expect("cluster lock")
            .insert(label.to_string(), (rollups, anomalies_json));
    }

    /// The `/cluster` body: per-label sampled-tick count, the latest
    /// rollup record verbatim (serde, same shape as the JSONL trace
    /// form), the exposure-window percentiles extracted from it, and
    /// the publisher's recovery anomalies verbatim.
    fn cluster_body(&self) -> String {
        let clusters = self.cluster.lock().expect("cluster lock");
        let mut body = format!(
            "{{\"run\":{},\"done\":{},\"clusters\":{{",
            json_string(&self.run),
            self.is_done()
        );
        for (i, (label, (rollups, anomalies))) in clusters.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&json_string(label));
            body.push_str(":{\"ticks\":");
            body.push_str(&rollups.len().to_string());
            body.push_str(",\"latest\":");
            match rollups.last() {
                Some(r) => {
                    body.push_str(&serde_json::to_string(r).unwrap_or_else(|_| "null".into()));
                    body.push_str(",\"exposure\":{\"windows\":");
                    body.push_str(&r.exposure_windows.to_string());
                    for (stat, q) in EXPOSURE_STATS {
                        body.push_str(&format!(",\"{stat}_ticks\":"));
                        match r.exposure_percentile(q) {
                            Some(v) => body.push_str(&v.to_string()),
                            None => body.push_str("null"),
                        }
                    }
                    body.push('}');
                }
                None => body.push_str("null,\"exposure\":null"),
            }
            body.push_str(",\"anomalies\":");
            body.push_str(anomalies);
            body.push('}');
        }
        body.push_str("}}");
        body
    }

    /// The `/cluster/series` body: per-label `[tick, value]` pairs for
    /// `metric` (optionally restricted to one label). `None` when the
    /// metric name is unknown — the handler turns that into a 400.
    /// Exposure percentiles before any closed window contribute gaps,
    /// not errors.
    fn cluster_series_body(&self, metric: &str, only: Option<&str>) -> Option<String> {
        if !valid_cluster_metric(metric) {
            return None;
        }
        let clusters = self.cluster.lock().expect("cluster lock");
        let mut body = format!("{{\"metric\":{},\"series\":{{", json_string(metric));
        let mut wrote = false;
        for (label, (rollups, _)) in clusters.iter() {
            if only.is_some_and(|f| f != label.as_str()) {
                continue;
            }
            let points: Vec<String> = rollups
                .iter()
                .filter_map(|r| r.series_value(metric).map(|v| format!("[{},{v}]", r.day)))
                .collect();
            if wrote {
                body.push(',');
            }
            body.push_str(&json_string(label));
            body.push_str(":[");
            body.push_str(&points.join(","));
            body.push(']');
            wrote = true;
        }
        body.push_str("}}");
        Some(body)
    }
}

/// Whether `metric` is a name [`ClusterRollup::series_value`] accepts,
/// probed against a rollup with a populated exposure histogram so this
/// check cannot drift from the real extraction.
fn valid_cluster_metric(metric: &str) -> bool {
    let mut probe = ClusterRollup::empty(0);
    probe.exposure[0] = 1;
    probe.exposure_windows = 1;
    probe.series_value(metric).is_some()
}

/// Whether `(class, stat)` is a pair [`LatencyRollup::stat`] accepts,
/// probed against a rollup with one sample per class so this check
/// cannot drift from the real extraction.
fn valid_latency_series(class: &str, stat: &str) -> bool {
    let mut probe = LatencyRollup::empty(0);
    for c in probe.classes.iter_mut() {
        c.observe(1, 1);
    }
    probe.stat(class, stat).is_some()
}

/// Whether `metric` is a name [`FleetRollup::series_value`] accepts,
/// probed against a record with populated distributions so this check
/// cannot drift from the real extraction.
fn valid_series_metric(metric: &str) -> bool {
    use salamander_obs::DIST_BUCKETS;
    let probe = FleetRollup {
        day: 0,
        alive: 0,
        dead_wear: 0,
        dead_afr: 0,
        dying: 0,
        capacity_opages: 0,
        wear: vec![1; DIST_BUCKETS],
        pec: vec![1; DIST_BUCKETS],
        usable: vec![1; DIST_BUCKETS],
        health: vec![1; DIST_BUCKETS],
    };
    probe.series_value(metric).is_some()
}

/// A running telemetry server: owns the listener thread and the bound
/// address (useful with `--serve 127.0.0.1:0`).
pub struct TelemetryServer {
    addr: SocketAddr,
    hub: Arc<TelemetryHub>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `addr` and start serving `hub` on a background accept
    /// thread (one short-lived thread per connection). Returns after
    /// the socket is bound, so the endpoints are reachable before the
    /// simulation starts.
    pub fn start(addr: &str, hub: Arc<TelemetryHub>) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_hub = hub.clone();
        let accept_stop = stop.clone();
        let accept_thread = std::thread::Builder::new()
            .name("telemetry-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let hub = accept_hub.clone();
                    let _ = std::thread::Builder::new()
                        .name("telemetry-conn".into())
                        .spawn(move || handle_connection(stream, &hub));
                }
            })?;
        Ok(TelemetryServer {
            addr: local,
            hub,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served hub.
    pub fn hub(&self) -> &Arc<TelemetryHub> {
        &self.hub
    }

    /// Stop accepting and join the accept thread. In-flight connection
    /// threads finish their one response on their own.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// One request per connection (`Connection: close`); anything
/// malformed gets a 400 and the socket drops.
fn handle_connection(stream: TcpStream, hub: &TelemetryHub) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || line.is_empty() {
        return;
    }
    // Drain headers (ignored) so the peer isn't left mid-send.
    let mut header = String::new();
    while reader.read_line(&mut header).is_ok() {
        if header == "\r\n" || header == "\n" || header.is_empty() {
            break;
        }
        header.clear();
    }
    let mut out = stream;
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => {
            respond(&mut out, 400, "text/plain", "bad request\n", &[]);
            return;
        }
    };
    if method != "GET" {
        respond(&mut out, 405, "text/plain", "method not allowed\n", &[]);
        return;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => {
            let body = hub.metrics_body();
            respond(&mut out, 200, "text/plain; version=0.0.4", &body, &[]);
        }
        "/healthz" => respond(&mut out, 200, "application/json", &hub.healthz_body(), &[]),
        "/health" => respond(&mut out, 200, "application/json", &hub.health_body(), &[]),
        "/progress" => {
            let body = hub.progress_body();
            respond(&mut out, 200, "application/json", &body, &[]);
        }
        "/fleet" => respond(&mut out, 200, "application/json", &hub.fleet_body(), &[]),
        "/fleet/series" => {
            let metric = query_param(query, "metric").unwrap_or("alive");
            match hub.fleet_series_body(metric, query_param(query, "fleet")) {
                Some(body) => respond(&mut out, 200, "application/json", &body, &[]),
                None => respond(
                    &mut out,
                    400,
                    "text/plain",
                    "unknown metric (try alive, dead, dying, capacity, wear_p50, ...)\n",
                    &[],
                ),
            }
        }
        "/latency" => respond(&mut out, 200, "application/json", &hub.latency_body(), &[]),
        "/latency/series" => {
            let class = query_param(query, "class").unwrap_or("host_read");
            let stat = query_param(query, "stat").unwrap_or("p99");
            match hub.latency_series_body(class, stat, query_param(query, "fleet")) {
                Some(body) => respond(&mut out, 200, "application/json", &body, &[]),
                None => respond(
                    &mut out,
                    400,
                    "text/plain",
                    "unknown class or stat (classes: host_read, host_write, gc, scrub, regen; stats: p50, p90, p99, p999, mean, count)\n",
                    &[],
                ),
            }
        }
        "/cluster" => respond(&mut out, 200, "application/json", &hub.cluster_body(), &[]),
        "/cluster/series" => {
            let metric = query_param(query, "metric").unwrap_or("backlog_chunks");
            match hub.cluster_series_body(metric, query_param(query, "fleet")) {
                Some(body) => respond(&mut out, 200, "application/json", &body, &[]),
                None => respond(
                    &mut out,
                    400,
                    "text/plain",
                    "unknown metric (try full, degraded, critical, lost, backlog_chunks, backlog_bytes, repair_bytes, drain_bytes, data_at_risk, exposure_windows, exposure_p99, ...)\n",
                    &[],
                ),
            }
        }
        "/trace/tail" => {
            let n = query_param(query, "n")
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_TAIL);
            let body = to_jsonl(&hub.live.trace.tail(n));
            respond(&mut out, 200, "application/x-ndjson", &body, &[]);
        }
        "/trace/stream" => {
            let from = query_param(query, "from")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            let (records, next, closed) = hub.live.trace.poll_after(from, STREAM_POLL_TIMEOUT);
            let mut body = String::new();
            for (_, rec) in &records {
                body.push_str(&to_jsonl(std::slice::from_ref(rec)));
            }
            let next_header = format!("X-Next-Cursor: {next}");
            let closed_header = format!("X-Stream-Closed: {closed}");
            respond(
                &mut out,
                200,
                "application/x-ndjson",
                &body,
                &[&next_header, &closed_header],
            );
        }
        "/quit" => {
            hub.quit.store(true, Ordering::SeqCst);
            respond(&mut out, 200, "application/json", "{\"ok\":true}", &[]);
        }
        _ => respond(&mut out, 404, "text/plain", "not found\n", &[]),
    }
}

/// First value of `key` in a raw query string (`a=1&b=2`).
fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

fn respond(out: &mut TcpStream, status: u16, content_type: &str, body: &str, extra: &[&str]) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for h in extra {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let _ = out.write_all(head.as_bytes());
    let _ = out.write_all(body.as_bytes());
    let _ = out.flush();
}

/// An [`http_get`] response: status code, headers, body.
pub type HttpResponse = (u16, Vec<(String, String)>, String);

/// Minimal blocking HTTP GET for tests and scripted checks: returns
/// `(status, headers, body)`. Not a general client — exactly enough to
/// scrape this crate's server.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header break"))?;
    let mut lines = head.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let headers = lines
        .filter_map(|l| l.split_once(": "))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    Ok((status, headers, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use salamander_obs::{SimTime, TraceEvent, TraceRecord};

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            time: SimTime::new(1, seq),
            event: TraceEvent::GcPass {
                block: seq,
                relocated: 2,
            },
        }
    }

    fn start() -> (TelemetryServer, Arc<TelemetryHub>) {
        let hub = TelemetryHub::new("testrun", LiveObs::with_cap(128));
        let server = TelemetryServer::start("127.0.0.1:0", hub.clone()).unwrap();
        (server, hub)
    }

    fn header<'a>(headers: &'a [(String, String)], key: &str) -> Option<&'a str> {
        headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .map(|(_, v)| v.as_str())
    }

    #[test]
    fn healthz_and_progress_respond() {
        let (server, hub) = start();
        hub.live.progress.set_day(12);
        let (status, _, body) = http_get(server.addr(), "/healthz").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"run\":\"testrun\""), "{body}");
        let (status, _, body) = http_get(server.addr(), "/progress").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"day\":12"), "{body}");
        server.shutdown();
    }

    #[test]
    fn metrics_serves_live_then_final_verbatim() {
        let (server, hub) = start();
        {
            let mut live = hub.live.metrics.lock().unwrap();
            live.inc("live_counter_total", 3);
        }
        let (status, _, body) = http_get(server.addr(), "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("live_counter_total 3"), "{body}");
        let final_text = "# TYPE frozen counter\nfrozen 1\n".to_string();
        hub.mark_done(Some(final_text.clone()));
        let (_, _, body) = http_get(server.addr(), "/metrics").unwrap();
        assert_eq!(body, final_text, "final scrape is the file bytes verbatim");
        server.shutdown();
    }

    #[test]
    fn trace_tail_and_stream_serve_ndjson() {
        let (server, hub) = start();
        for i in 0..10 {
            hub.live.trace.push(&rec(i));
        }
        let (status, _, body) = http_get(server.addr(), "/trace/tail?n=3").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 3);
        let parsed = salamander_obs::trace::parse_jsonl(&body).unwrap();
        assert_eq!(parsed[0].seq, 7);
        // Stream from cursor 0 returns everything retained plus the
        // next cursor in a header.
        let (status, headers, body) = http_get(server.addr(), "/trace/stream?from=0").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 10);
        assert_eq!(header(&headers, "X-Next-Cursor"), Some("10"));
        assert_eq!(header(&headers, "X-Stream-Closed"), Some("false"));
        // A poll at the frontier after close returns empty + closed.
        hub.mark_done(None);
        let (_, headers, body) = http_get(server.addr(), "/trace/stream?from=10").unwrap();
        assert!(body.is_empty());
        assert_eq!(header(&headers, "X-Stream-Closed"), Some("true"));
        server.shutdown();
    }

    #[test]
    fn health_reports_published_as_json_map() {
        let (server, hub) = start();
        let (_, _, body) = http_get(server.addr(), "/health").unwrap();
        assert!(body.contains("\"reports\":{}"), "{body}");
        hub.publish_health("mode=ShrinkS", "{\"score\":97}".to_string());
        hub.publish_health("mode=RegenS", "{\"score\":99}".to_string());
        let (_, _, body) = http_get(server.addr(), "/health").unwrap();
        assert!(
            body.contains("\"mode=RegenS\":{\"score\":99},\"mode=ShrinkS\":{\"score\":97}"),
            "{body}"
        );
        server.shutdown();
    }

    fn rollup(day: u32, alive: u32) -> FleetRollup {
        use salamander_obs::DIST_BUCKETS;
        let mut wear = vec![0u32; DIST_BUCKETS];
        wear[2] = alive;
        FleetRollup {
            day,
            alive,
            dead_wear: 100 - alive,
            dead_afr: 0,
            dying: 1,
            capacity_opages: u64::from(alive) * 1000,
            wear,
            pec: vec![0; DIST_BUCKETS],
            usable: vec![0; DIST_BUCKETS],
            health: vec![0; DIST_BUCKETS],
        }
    }

    #[test]
    fn fleet_snapshot_and_series_serve_published_rollups() {
        let (server, hub) = start();
        let (_, _, body) = http_get(server.addr(), "/fleet").unwrap();
        assert!(body.contains("\"fleets\":{}"), "{body}");
        hub.publish_rollups("fleet=ShrinkS", vec![rollup(30, 100), rollup(60, 97)]);
        hub.publish_rollups("fleet=Baseline", vec![rollup(30, 90)]);
        let (status, _, body) = http_get(server.addr(), "/fleet").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("\"fleet=ShrinkS\":{\"days\":2,\"latest\":"),
            "{body}"
        );
        assert!(body.contains("\"alive\":97"), "{body}");
        // Series: every label unless ?fleet= narrows it.
        let (status, _, body) = http_get(server.addr(), "/fleet/series?metric=alive").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("\"fleet=ShrinkS\":[[30,100],[60,97]]"),
            "{body}"
        );
        assert!(body.contains("\"fleet=Baseline\":[[30,90]]"), "{body}");
        let (_, _, body) = http_get(
            server.addr(),
            "/fleet/series?metric=wear_p50&fleet=fleet=Baseline",
        )
        .unwrap();
        assert!(body.contains("\"fleet=Baseline\":[[30,150]]"), "{body}");
        assert!(!body.contains("ShrinkS"), "{body}");
        // Unknown metrics are a 400, not an empty 200.
        let (status, _, _) = http_get(server.addr(), "/fleet/series?metric=bogus").unwrap();
        assert_eq!(status, 400);
        // /progress grows a rollup_days object once rollups exist.
        let (_, _, body) = http_get(server.addr(), "/progress").unwrap();
        assert!(
            body.contains("\"rollup_days\":{\"fleet=Baseline\":1,\"fleet=ShrinkS\":2}"),
            "{body}"
        );
        server.shutdown();
    }

    fn lat_rollup(day: u32, read_ns: u64) -> LatencyRollup {
        let mut r = LatencyRollup::empty(day);
        r.classes[0].observe(read_ns, 10); // host_read
        r.classes[1].observe(605_120, 4); // host_write
        r
    }

    #[test]
    fn latency_snapshot_and_series_serve_published_rollups() {
        let (server, hub) = start();
        let (_, _, body) = http_get(server.addr(), "/latency").unwrap();
        assert!(body.contains("\"latencies\":{}"), "{body}");
        hub.publish_latency(
            "fleet=RegenS",
            vec![lat_rollup(30, 60_120), lat_rollup(60, 76_786)],
            "[{\"day\":60,\"kind\":\"tail_latency_regression\"}]".to_string(),
        );
        hub.publish_latency(
            "fleet=Baseline",
            vec![lat_rollup(30, 60_120), LatencyRollup::empty(60)],
            "[]".to_string(),
        );
        let (status, _, body) = http_get(server.addr(), "/latency").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("\"classes\":[\"host_read\",\"host_write\",\"gc\",\"scrub\",\"regen\"]"),
            "{body}"
        );
        // Latest = last *non-empty* rollup; zero-count classes omitted.
        assert!(body.contains("\"fleet=RegenS\":{\"days\":2,\"latest_day\":60,\"latest\":{\"host_read\":{\"count\":10,"), "{body}");
        assert!(
            body.contains("\"fleet=Baseline\":{\"days\":2,\"latest_day\":30,"),
            "{body}"
        );
        assert!(!body.contains("\"gc\":{"), "{body}");
        assert!(
            body.contains("\"regressions\":[{\"day\":60,\"kind\":\"tail_latency_regression\"}]"),
            "{body}"
        );
        // Series over the log2-bucket upper edges; empty days are gaps.
        let (status, _, body) =
            http_get(server.addr(), "/latency/series?class=host_read&stat=p99").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("\"class\":\"host_read\",\"stat\":\"p99\""),
            "{body}"
        );
        assert!(
            body.contains("\"fleet=RegenS\":[[30,61440],[60,81920]]"),
            "{body}"
        );
        assert!(body.contains("\"fleet=Baseline\":[[30,61440]]"), "{body}");
        // Defaults are class=host_read, stat=p99; ?fleet= narrows.
        let (status, _, dflt) = http_get(server.addr(), "/latency/series").unwrap();
        assert_eq!(status, 200);
        assert_eq!(dflt, body);
        let (_, _, body) = http_get(
            server.addr(),
            "/latency/series?stat=count&fleet=fleet=Baseline",
        )
        .unwrap();
        assert!(body.contains("\"fleet=Baseline\":[[30,10]]"), "{body}");
        assert!(!body.contains("RegenS"), "{body}");
        // Unknown class or stat is a 400, not an empty 200.
        let (status, _, _) = http_get(server.addr(), "/latency/series?class=bogus").unwrap();
        assert_eq!(status, 400);
        let (status, _, _) = http_get(server.addr(), "/latency/series?stat=bogus").unwrap();
        assert_eq!(status, 400);
        server.shutdown();
    }

    fn cluster_rollup(day: u32, backlog: u64) -> ClusterRollup {
        let mut r = ClusterRollup::empty(day);
        r.full = 500 - backlog;
        r.degraded = backlog;
        r.backlog_chunks = backlog;
        r.backlog_bytes = backlog * 65_536;
        r.repair_bytes = u64::from(day) * 1024;
        if backlog == 0 && day > 1 {
            // Windows from earlier ticks closed with dwell 1..4.
            r.exposure[1] = 3;
            r.exposure[2] = 1;
            r.exposure_windows = 4;
        }
        r
    }

    #[test]
    fn cluster_snapshot_and_series_serve_published_rollups() {
        let (server, hub) = start();
        let (_, _, body) = http_get(server.addr(), "/cluster").unwrap();
        assert!(body.contains("\"clusters\":{}"), "{body}");
        hub.publish_cluster(
            "cluster=ShrinkS",
            vec![
                cluster_rollup(1, 40),
                cluster_rollup(2, 40),
                cluster_rollup(3, 0),
            ],
            "[{\"day\":1,\"kind\":\"recovery_storm\"}]".to_string(),
        );
        hub.publish_cluster(
            "cluster=Baseline",
            vec![cluster_rollup(1, 0)],
            "[]".to_string(),
        );
        let (status, _, body) = http_get(server.addr(), "/cluster").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("\"cluster=ShrinkS\":{\"ticks\":3,\"latest\":{\"day\":3,"),
            "{body}"
        );
        // 4 windows of dwell 1,1,1,2-3: p50 < 2 ticks, p99 < 4.
        assert!(
            body.contains(
                "\"exposure\":{\"windows\":4,\"p50_ticks\":2,\"p90_ticks\":4,\"p99_ticks\":4}"
            ),
            "{body}"
        );
        assert!(
            body.contains("\"anomalies\":[{\"day\":1,\"kind\":\"recovery_storm\"}]"),
            "{body}"
        );
        // A label with no closed windows reports null percentiles.
        assert!(
            body.contains("\"cluster=Baseline\":{\"ticks\":1,\"latest\":{\"day\":1,"),
            "{body}"
        );
        assert!(body.contains("\"p99_ticks\":null"), "{body}");
        // Series: every label unless ?fleet= narrows it.
        let (status, _, body) =
            http_get(server.addr(), "/cluster/series?metric=backlog_chunks").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("\"cluster=ShrinkS\":[[1,40],[2,40],[3,0]]"),
            "{body}"
        );
        assert!(body.contains("\"cluster=Baseline\":[[1,0]]"), "{body}");
        // Default metric is backlog_chunks.
        let (_, _, dflt) = http_get(server.addr(), "/cluster/series").unwrap();
        assert_eq!(dflt, body);
        // Exposure percentiles serve as series too; ticks with no
        // closed window are gaps.
        let (_, _, body) = http_get(
            server.addr(),
            "/cluster/series?metric=exposure_p99&fleet=cluster=ShrinkS",
        )
        .unwrap();
        assert!(body.contains("\"cluster=ShrinkS\":[[3,4]]"), "{body}");
        assert!(!body.contains("Baseline"), "{body}");
        // Unknown metrics are a 400, not an empty 200.
        let (status, _, _) = http_get(server.addr(), "/cluster/series?metric=bogus").unwrap();
        assert_eq!(status, 400);
        server.shutdown();
    }

    #[test]
    fn quit_flag_reaches_the_host() {
        let (server, hub) = start();
        assert!(!hub.quit_requested());
        let (status, _, body) = http_get(server.addr(), "/quit").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("true"));
        assert!(hub.quit_requested());
        server.shutdown();
    }

    #[test]
    fn unknown_paths_and_methods_are_rejected() {
        let (server, _hub) = start();
        let (status, _, _) = http_get(server.addr(), "/nope").unwrap();
        assert_eq!(status, 404);
        // Raw POST gets a 405.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        write!(s, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
        server.shutdown();
    }
}
