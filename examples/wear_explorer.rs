//! Wear explorer: how the RBER model, ECC profiles, and tiredness
//! thresholds interact — the machinery behind Fig. 2, interactively
//! parameterized.
//!
//! Run: `cargo run --release --example wear_explorer [-- --spare-kib 2 --uber 15]`

use salamander::report::Table;
use salamander_ecc::capability::page_uber;
use salamander_ecc::profile::EccConfig;
use salamander_flash::rber::RberModel;

fn arg_or<T: std::str::FromStr>(flag: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let spare_kib: u32 = arg_or("--spare-kib", 2);
    let uber_exp: f64 = arg_or("--uber", 15.0);
    let cfg = EccConfig {
        fpage_spare_bytes: spare_kib * 1024,
        target_page_uber: 10f64.powf(-uber_exp),
        ..EccConfig::default()
    };
    let rber = RberModel::default();

    println!(
        "fPage: {} KiB data + {} KiB spare, 4 KiB oPages, target page UBER 1e-{uber_exp:.0}\n",
        cfg.fpage_data_bytes / 1024,
        spare_kib
    );

    let mut t = Table::new(
        "Tiredness levels",
        &[
            "level",
            "data oPages",
            "code rate",
            "BCH (m, t)",
            "max RBER",
            "max PEC",
            "benefit",
        ],
    );
    let profiles = cfg.profiles();
    let base_pec = rber.pec_at_rber(profiles[0].max_rber) as f64;
    for p in &profiles {
        let pec = rber.pec_at_rber(p.max_rber);
        t.row(vec![
            format!("L{}", p.level.index()),
            p.data_opages.to_string(),
            format!("{:.3}", p.code_rate),
            format!("({}, {})", p.m, p.t),
            format!("{:.2e}", p.max_rber),
            pec.to_string(),
            format!("{:.2}x", pec as f64 / base_pec),
        ]);
    }
    println!("{}", t.to_markdown());

    // Show the UBER cliff for the native code: how sharply reliability
    // collapses as RBER passes the threshold.
    let p0 = profiles[0];
    let mut cliff = Table::new(
        "UBER vs RBER at the native code rate (the reliability cliff)",
        &["RBER / threshold", "page UBER"],
    );
    for mult in [0.5, 0.8, 1.0, 1.2, 1.5, 2.0, 3.0] {
        let u = page_uber(p0.codeword_bits, p0.t, p0.max_rber * mult);
        let page_u = 1.0 - (1.0 - u).powi(p0.chunks as i32);
        cliff.row(vec![format!("{mult:.1}"), format!("{page_u:.2e}")]);
    }
    println!("{}", cliff.to_markdown());
    println!(
        "The cliff is why tiredness transitions are safe: a page is retired \
         at its threshold with orders of magnitude of reliability margin \
         still ahead of actual data loss."
    );
}
