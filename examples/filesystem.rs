//! A distributed file system on aging Salamander SSDs, end to end: create
//! files in a namespace backed by replicated chunks, wear the devices
//! down, and watch files stay healthy (recovery) or degrade (bandwidth
//! limits) instead of disappearing with whole drives.
//!
//! Run: `cargo run --release --example filesystem`

use salamander::config::{Mode, SsdConfig};
use salamander::device::{HostEvent, SalamanderSsd};
use salamander_difs::cluster::Cluster;
use salamander_difs::namespace::{FileHealth, Namespace};
use salamander_difs::store::ChunkStore;
use salamander_difs::types::{DifsConfig, UnitId};
use salamander_ftl::types::MdiskId;
use std::collections::HashMap;

const MB: u64 = 1 << 20;

fn main() {
    // Six single-SSD nodes; chunks are minidisk-sized (256 KiB on the
    // fast-wear test geometry); recovery is throttled to feel realistic.
    let mut cluster = Cluster::new();
    let mut store = ChunkStore::new(DifsConfig {
        replication: 3,
        chunk_bytes: 256 * 1024,
        recovery_chunks_per_tick: Some(4),
    });
    let mut ns = Namespace::new();
    let mut ssds: Vec<(SalamanderSsd, HashMap<MdiskId, UnitId>)> = Vec::new();
    for seed in 0..6u64 {
        let ssd = SalamanderSsd::open(SsdConfig::small_test().mode(Mode::Regen).seed(seed));
        let node = cluster.add_node();
        let device = cluster.add_device(node);
        let mut units = HashMap::new();
        for m in ssd.minidisks() {
            units.insert(m, cluster.add_unit(device, 1));
        }
        ssds.push((ssd, units));
    }

    // Build a small file tree.
    for (path, size) in [
        ("/warehouse/events.parquet", 3 * MB / 2),
        ("/warehouse/users.parquet", MB),
        ("/logs/2026-07-06.log", MB / 2),
        ("/models/checkpoint.bin", 3 * MB / 2),
    ] {
        ns.create(&mut store, &mut cluster, path, size).unwrap();
    }
    println!(
        "created {} files, {} MiB logical ({} MiB with replicas)\n",
        ns.file_count(),
        ns.total_bytes() / MB,
        ns.total_bytes() * 3 / MB
    );

    // Age the devices; pump minidisk lifecycle events into the store.
    let mut state = 0xF11Eu64;
    for round in 1..=40 {
        for (ssd, units) in ssds.iter_mut() {
            for _ in 0..400 {
                if ssd.is_dead() {
                    break;
                }
                let mdisks = ssd.minidisks();
                if mdisks.is_empty() {
                    break;
                }
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let id = mdisks[(state as usize / 7) % mdisks.len()];
                let lbas = ssd.minidisk_lbas(id).unwrap();
                let _ = ssd.write(id, (state % lbas as u64) as u32, None);
            }
            for e in ssd.poll_events() {
                match e {
                    HostEvent::MinidiskFailed { id, .. } => {
                        if let Some(unit) = units.remove(&id) {
                            store.fail_unit(&mut cluster, unit);
                        }
                    }
                    HostEvent::MinidiskCreated { id, .. } => {
                        // Re-register regenerated capacity under the same
                        // device.
                        let existing = cluster.units().find_map(|(u, info)| {
                            units.values().any(|x| *x == u).then_some(info.device)
                        });
                        let device = match existing {
                            Some(d) => d,
                            None => {
                                let n = cluster.add_node();
                                cluster.add_device(n)
                            }
                        };
                        units.insert(id, cluster.add_unit(device, 1));
                        store.retry_pending(&mut cluster);
                    }
                    _ => {}
                }
            }
        }
        store.tick(&mut cluster);
        if round % 4 == 0 {
            let m = store.metrics();
            println!(
                "round {round:>3}: {} units alive, {:.1} MiB recovered, {} under-replicated",
                cluster.alive_unit_count(),
                m.recovery_bytes as f64 / MB as f64,
                m.under_replicated,
            );
            for path in ns.list("/") {
                let health = ns.health(&store, path).unwrap();
                let marker = match health {
                    FileHealth::Healthy => "ok      ",
                    FileHealth::Degraded => "DEGRADED",
                    FileHealth::Corrupt => "CORRUPT ",
                };
                println!("   [{marker}] {path}");
            }
        }
    }
    let corrupt = ns.corrupt_files(&store).len();
    println!(
        "\nend state: {} files, {corrupt} corrupt — device wear surfaced as \
         gradual re-replication work, not as sudden whole-drive loss.",
        ns.file_count()
    );
}
