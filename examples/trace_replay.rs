//! Trace record/replay: capture one deterministic workload, replay it on
//! ShrinkS and RegenS devices, and compare their lifecycles on identical
//! input — the apples-to-apples methodology the bench harnesses use.
//!
//! Run: `cargo run --release --example trace_replay`

use salamander::config::{Mode, SsdConfig};
use salamander::device::SalamanderSsd;
use salamander_workload::gen::{AccessPattern, OpKind, Workload, WorkloadConfig};
use salamander_workload::trace::Trace;

/// Replay a trace onto a device, mapping flat addresses over the active
/// minidisks; returns (accepted writes, decommissions, regenerations).
fn replay(trace: &Trace, mode: Mode) -> (u64, u64, u64) {
    let mut ssd = SalamanderSsd::open(SsdConfig::small_test().mode(mode).seed(3));
    let mut accepted = 0;
    for op in &trace.ops {
        if ssd.is_dead() {
            break;
        }
        if op.kind != OpKind::Write {
            continue;
        }
        let mdisks = ssd.minidisks();
        if mdisks.is_empty() {
            break;
        }
        let id = mdisks[(op.addr % mdisks.len() as u64) as usize];
        let lbas = ssd.minidisk_lbas(id).unwrap();
        let lba = ((op.addr / mdisks.len() as u64) % lbas as u64) as u32;
        if ssd.write(id, lba, None).is_ok() {
            accepted += 1;
        }
    }
    let s = ssd.stats();
    (accepted, s.mdisks_decommissioned, s.mdisks_regenerated)
}

fn main() {
    // Record a zipfian write-heavy trace (hot/cold skew, like a cache tier).
    let mut workload = Workload::new(WorkloadConfig {
        opages: 1024,
        pattern: AccessPattern::Zipfian { theta: 0.9 },
        write_fraction: 0.9,
        op_len: 1,
        seed: 99,
    });
    let mut trace = Trace::new();
    for i in 0..800_000u64 {
        trace.record(i as f64 / 86_400.0, workload.next_op());
    }
    println!(
        "recorded {} ops ({} written oPages); trace serializes to {} KiB of JSONL\n",
        trace.ops.len(),
        trace.written_opages(),
        trace.to_jsonl().len() / 1024
    );

    // Round-trip through the serialized form, then replay on both modes.
    let trace = Trace::from_jsonl(&trace.to_jsonl()).expect("trace round-trips");
    println!(
        "{:<10} {:>16} {:>15} {:>15}",
        "mode", "accepted writes", "decommissions", "regenerations"
    );
    for mode in [Mode::Baseline, Mode::Shrink, Mode::Regen] {
        let (accepted, dec, regen) = replay(&trace, mode);
        println!(
            "{:<10} {:>16} {:>15} {:>15}",
            mode.name(),
            accepted,
            dec,
            regen
        );
    }
    println!(
        "\nidentical input, different endings: the baseline bricks early; \
         ShrinkS sheds minidisks; RegenS also wins some back."
    );
}
