//! The paper's motivating scenario end to end: a replicated storage
//! cluster built on Salamander SSDs. As devices wear, minidisks fail one
//! at a time; the distributed store re-replicates their (small) contents
//! instead of recovering whole drives, and regenerated minidisks rejoin
//! the placement pool.
//!
//! Compare with `--baseline` to see whole-device failures instead.
//!
//! Run: `cargo run --release --example cluster_aging [-- --baseline]`

use salamander::config::{Mode, SsdConfig};
use salamander_difs::types::DifsConfig;
use salamander_fleet::bridge::ClusterHarness;

fn main() {
    let mode = if std::env::args().any(|a| a == "--baseline") {
        Mode::Baseline
    } else {
        Mode::Regen
    };
    println!(
        "building a 6-node cluster of {} SSDs, replication 3",
        mode.name()
    );
    let mut harness = ClusterHarness::new(DifsConfig {
        replication: 3,
        chunk_bytes: 256 * 1024,
        recovery_chunks_per_tick: None,
    });
    for seed in 0..6 {
        harness.add_device(SsdConfig::small_test().mode(mode).seed(1000 + seed));
    }
    let chunks = harness.fill(0.6);
    println!(
        "placed {chunks} chunks ({} MiB of unique data, {} MiB with replicas)\n",
        chunks * 256 / 1024,
        chunks * 3 * 256 / 1024
    );

    println!(
        "{:>6} {:>8} {:>10} {:>12} {:>14} {:>12} {:>10}",
        "round", "devices", "units", "recovery MiB", "re-replications", "under-repl", "lost"
    );
    let mut round = 0;
    while harness.alive_devices() > 0 && round < 150 {
        harness.churn(1_000);
        round += 1;
        if round % 2 == 0 || harness.alive_devices() == 0 {
            let m = harness.metrics();
            println!(
                "{:>6} {:>8} {:>10} {:>12.1} {:>14} {:>12} {:>10}",
                round,
                harness.alive_devices(),
                harness.cluster().alive_unit_count(),
                m.recovery_bytes as f64 / (1024.0 * 1024.0),
                m.re_replications,
                m.under_replicated,
                m.lost_chunks,
            );
        }
    }
    let m = harness.metrics();
    println!(
        "\nfleet exhausted after {round} rounds: {:.1} MiB recovered across {} events \
         ({:.2} MiB/event), {} chunks lost at end-of-life",
        m.recovery_bytes as f64 / (1024.0 * 1024.0),
        m.re_replications,
        if m.re_replications > 0 {
            m.recovery_bytes as f64 / (1024.0 * 1024.0) / m.re_replications as f64
        } else {
            0.0
        },
        m.lost_chunks,
    );
    println!(
        "note: with --baseline, failures arrive as whole devices — few, large \
         recovery events; Salamander spreads the same volume over many small ones."
    );
}
