//! Sustainability report: the paper's Eq. 3 (carbon) and Eq. 4 (TCO)
//! models over a configurable deployment, with sensitivity sweeps.
//!
//! Run: `cargo run --release --example carbon_report`

use salamander::report::{pct, Table};
use salamander_sustain::carbon::{
    fig4_scenarios, fixup_upgrade_rate, upgrade_rate_for_lifetime, CarbonParams,
};
use salamander_sustain::tco::TcoParams;

fn main() {
    println!("== Carbon (Eq. 3) ==\n");
    let mut t = Table::new(
        "CO2e savings by configuration",
        &["configuration", "savings"],
    );
    for s in fig4_scenarios() {
        t.row(vec![s.label, pct(s.savings)]);
    }
    println!("{}", t.to_markdown());

    println!("== What if lifetime extension improves further? ==\n");
    let mut sweep = Table::new(
        "CO2e savings vs lifetime extension",
        &[
            "lifetime benefit",
            "Ru (fixed up)",
            "current grid",
            "renewables",
        ],
    );
    for benefit in [1.0, 1.2, 1.5, 2.0, 3.0] {
        let ru = fixup_upgrade_rate(upgrade_rate_for_lifetime(benefit), 0.4);
        let p = CarbonParams {
            f_op: 0.46,
            power_effectiveness: 1.06,
            upgrade_rate: ru,
        };
        sweep.row(vec![
            format!("{benefit:.1}x"),
            format!("{ru:.3}"),
            pct(p.savings()),
            pct(p.savings_renewable()),
        ]);
    }
    println!("{}", sweep.to_markdown());

    println!("== Cost (Eq. 4) ==\n");
    let mut tco = Table::new(
        "TCO savings",
        &["mode", "f_opex = 0.14", "f_opex = 0.30", "f_opex = 0.50"],
    );
    for (name, p) in [
        ("ShrinkS", TcoParams::shrink()),
        ("RegenS", TcoParams::regen()),
    ] {
        tco.row(vec![
            name.to_string(),
            pct(p.savings()),
            pct(p.with_opex(0.30).savings()),
            pct(p.with_opex(0.50).savings()),
        ]);
    }
    println!("{}", tco.to_markdown());
    println!(
        "Paper anchors: 3-8% CO2e today, 11-20% under renewables; \
         13%/25% TCO at f_opex=0.14."
    );
}
