//! Summarize a Salamander JSONL event trace (DESIGN.md §9): per run
//! segment, the minidisk lifecycle timeline — decommissions with their
//! cause, regenerations, purges, device death — plus totals for the
//! high-volume page/GC/scrub/retry events.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin lifetime -p salamander-bench -- --trace /tmp/run.jsonl
//! cargo run --release --example trace_summary -- /tmp/run.jsonl
//! ```
//!
//! Without an argument, runs a small fast-wear simulation in-process and
//! summarizes its trace, so the example is self-contained.

use salamander::config::{Mode, SsdConfig};
use salamander::sim::EnduranceSim;
use salamander_obs::{trace, Obs, TraceEvent, TraceRecord};

fn main() {
    let records = match std::env::args().nth(1) {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            match trace::parse_jsonl(&text) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => {
            eprintln!("no trace given; tracing a fast-wear ShrinkS run instead");
            let cfg = SsdConfig::small_test().mode(Mode::Shrink);
            EnduranceSim::new(cfg)
                .run_observed("mode=ShrinkS (demo)", Obs::recording())
                .trace
        }
    };
    if records.is_empty() {
        println!("empty trace");
        return;
    }

    // Split on RunMarker boundaries; a trace without markers is one
    // anonymous segment.
    let mut segments: Vec<(String, Vec<&TraceRecord>)> = Vec::new();
    for r in &records {
        match &r.event {
            TraceEvent::RunMarker { label } => segments.push((label.clone(), Vec::new())),
            _ => {
                if segments.is_empty() {
                    segments.push(("(unlabelled)".into(), Vec::new()));
                }
                segments.last_mut().expect("segment exists").1.push(r);
            }
        }
    }

    println!(
        "{} events, {} run segment(s)",
        records.len(),
        segments.len()
    );
    for (label, events) in &segments {
        println!("\n== {label} ({} events)", events.len());
        let mut tired = 0u64;
        let mut retired = 0u64;
        let mut gc_passes = 0u64;
        let mut gc_relocated = 0u64;
        let mut scrubs = 0u64;
        let mut retries = 0u64;
        for r in events {
            let day = r.time.day;
            match &r.event {
                TraceEvent::MdiskDecommissioned {
                    id,
                    valid_lbas,
                    draining,
                    cause,
                } => println!(
                    "  day {day:>5}: minidisk {id} decommissioned \
                     ({valid_lbas} valid LBAs, {}, cause: {cause:?})",
                    if *draining { "draining" } else { "dropped" }
                ),
                TraceEvent::MdiskPurged { id } => {
                    println!("  day {day:>5}: minidisk {id} purged before ack")
                }
                TraceEvent::MdiskRegenerated { id, level } => {
                    println!("  day {day:>5}: minidisk {id} regenerated at L{level}")
                }
                TraceEvent::DeviceDied { cause } => {
                    println!("  day {day:>5}: device died ({cause:?})")
                }
                TraceEvent::FleetDeviceDied { device, cause } => {
                    println!("  day {day:>5}: fleet device {device} died ({cause:?})")
                }
                TraceEvent::ChunkLost { chunk } => {
                    println!("  day {day:>5}: chunk {chunk} LOST")
                }
                TraceEvent::UncorrectableRead { mdisk, lba } => {
                    println!("  day {day:>5}: uncorrectable read (minidisk {mdisk}, lba {lba})")
                }
                TraceEvent::PageTired { .. } => tired += 1,
                TraceEvent::PageRetired { .. } => retired += 1,
                TraceEvent::GcPass { relocated, .. } => {
                    gc_passes += 1;
                    gc_relocated += relocated;
                }
                TraceEvent::ScrubRefresh { .. } => scrubs += 1,
                TraceEvent::ReadRetry { .. } => retries += 1,
                TraceEvent::ChunkReReplicated { .. } | TraceEvent::RunMarker { .. } => {}
            }
        }
        let rereplicated: u64 = events
            .iter()
            .map(|r| match r.event {
                TraceEvent::ChunkReReplicated { bytes, .. } => bytes,
                _ => 0,
            })
            .sum();
        println!(
            "  totals: {tired} level transitions, {retired} page retirements, \
             {gc_passes} GC passes ({gc_relocated} oPages relocated), \
             {scrubs} scrub refreshes, {retries} read retries"
        );
        if rereplicated > 0 {
            println!("  totals: {rereplicated} bytes re-replicated by the diFS");
        }
    }
}
