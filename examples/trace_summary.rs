//! Summarize a Salamander JSONL event trace: a thin wrapper over the
//! `obsctl lifecycle` query path (`salamander_health::query`), kept as
//! an example of consuming trace artifacts as a library.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin lifetime -p salamander-bench -- --trace /tmp/run.jsonl
//! cargo run --release --example trace_summary -- /tmp/run.jsonl
//! ```
//!
//! Without an argument, runs a small fast-wear simulation in-process and
//! summarizes its trace, so the example is self-contained.

use salamander::config::{Mode, SsdConfig};
use salamander::sim::EnduranceSim;
use salamander_health::query;
use salamander_obs::{trace, Obs};

fn main() {
    let records = match std::env::args().nth(1) {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            match trace::parse_jsonl(&text) {
                Ok(r) => r,
                Err(e) => {
                    // The typed error names the line and snippet.
                    eprintln!("cannot parse {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => {
            eprintln!("no trace given; tracing a fast-wear ShrinkS run instead");
            let cfg = SsdConfig::small_test().mode(Mode::Shrink);
            EnduranceSim::new(cfg)
                .run_observed("mode=ShrinkS (demo)", Obs::recording())
                .trace
        }
    };
    print!("{}", query::lifecycle(&records, None));
}
