//! Quickstart: open a Salamander SSD, write and read data, watch it
//! shrink and regenerate as the flash wears out.
//!
//! Run: `cargo run --release --example quickstart`

use salamander::config::{Mode, SsdConfig};
use salamander::device::{HostEvent, SalamanderSsd};

fn main() {
    // A small fast-wear device so the whole lifecycle fits in seconds.
    let mut ssd = SalamanderSsd::open(SsdConfig::small_test().mode(Mode::Regen).seed(42));
    println!(
        "device online: {} minidisks x {} KiB = {} KiB logical capacity",
        ssd.minidisks().len(),
        ssd.minidisk_lbas(ssd.minidisks()[0]).unwrap() * 4,
        ssd.capacity_bytes() / 1024,
    );

    // Ordinary I/O: write a page, read it back.
    let disk = ssd.minidisks()[0];
    let page = vec![0xC0u8; ssd.opage_bytes()];
    ssd.write(disk, 0, Some(&page)).unwrap();
    assert_eq!(ssd.read(disk, 0).unwrap().as_deref(), Some(&page[..]));
    println!("wrote and read back one 4 KiB oPage on minidisk {:?}", disk);

    // Now age the device with synthetic churn and narrate its lifecycle.
    let mut state = 0xDEADBEEFu64;
    let mut writes: u64 = 0;
    while !ssd.is_dead() {
        let mdisks = ssd.minidisks();
        if mdisks.is_empty() {
            break;
        }
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let id = mdisks[(state as usize / 7) % mdisks.len()];
        let lbas = ssd.minidisk_lbas(id).unwrap();
        if ssd.write(id, (state % lbas as u64) as u32, None).is_ok() {
            writes += 1;
        }
        for e in ssd.poll_events() {
            match e {
                HostEvent::MinidiskFailed { id, valid_lbas, .. } => println!(
                    "[{writes:>8} writes] minidisk {id:?} decommissioned ({valid_lbas} live LBAs to re-replicate)"
                ),
                HostEvent::MinidiskPurged { id } => println!(
                    "[{writes:>8} writes] minidisk {id:?} purged before acknowledgement"
                ),
                HostEvent::MinidiskCreated { id, level } => println!(
                    "[{writes:>8} writes] minidisk {id:?} REGENERATED at tiredness {level:?}"
                ),
                HostEvent::DeviceFailed => {
                    println!("[{writes:>8} writes] device fully worn out")
                }
                HostEvent::UnrecoverableRead { id, lba } => {
                    println!("[{writes:>8} writes] uncorrectable read {id:?}/{lba}")
                }
            }
        }
    }
    let s = ssd.stats();
    println!(
        "\nlifetime summary: {} host writes, WA {:.2}, {} decommissions, {} regenerations",
        s.host_writes,
        s.write_amplification().unwrap_or(1.0),
        s.mdisks_decommissioned,
        s.mdisks_regenerated,
    );
}
