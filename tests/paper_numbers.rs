//! The paper's headline numbers as executable assertions. Each test names
//! the claim it checks; tolerances reflect that our substrate is a
//! calibrated simulator, not the authors' (nonexistent) testbed — the
//! *shape* (who wins, rough factors) is what must hold.

use salamander::config::{Mode, SsdConfig};
use salamander::sim::EnduranceSim;
use salamander_ecc::profile::EccConfig;
use salamander_flash::rber::RberModel;
use salamander_fleet::perf;
use salamander_sustain::carbon::CarbonParams;
use salamander_sustain::tco::TcoParams;

#[test]
fn fig2_l1_lifetime_benefit_about_fifty_percent() {
    // §4: "a 50% potential lifetime benefit for L1".
    let cfg = EccConfig::default();
    let rber = RberModel::default();
    let benefit = cfg.lifetime_benefit(rber.exponent);
    let l1 = benefit[1].1;
    assert!((1.35..=1.65).contains(&l1), "L1 benefit {l1}");
}

#[test]
fn fig2_diminishing_returns_justify_l2_cap() {
    // §4: "realistically, RegenS should limit itself to L < 2".
    let cfg = EccConfig::default();
    let b = cfg.lifetime_benefit(RberModel::default().exponent);
    let marginal_l1 = b[1].1 / b[0].1 - 1.0;
    let marginal_l2 = b[2].1 / b[1].1 - 1.0;
    assert!(
        marginal_l2 < marginal_l1 / 2.0,
        "L2's marginal gain ({marginal_l2:.2}) should be well under half of L1's ({marginal_l1:.2})"
    );
}

#[test]
fn native_code_rate_is_88_percent() {
    // §1: "A typical flash page spare code rate is 88%".
    let p = EccConfig::default().profiles();
    assert!((p[0].code_rate - 0.888).abs() < 0.01);
}

#[test]
fn headline_lifetime_ordering_baseline_shrink_regen() {
    // §4: ShrinkS ≥ ~1.2x (CVSS floor), RegenS beyond. End-to-end device
    // lifetime additionally credits shrinking (writes accepted after a
    // baseline would have bricked), so the ratios exceed the paper's
    // PEC-level estimates; the ordering and the ≥1.2x floor are the claim.
    let results = EnduranceSim::compare_modes(SsdConfig::small_test());
    let base = results[0].host_opages_written as f64;
    let shrink = results[1].host_opages_written as f64 / base;
    let regen = results[2].host_opages_written as f64 / base;
    assert!(shrink >= 1.2, "ShrinkS {shrink:.2}x");
    assert!(regen > shrink, "RegenS {regen:.2}x vs ShrinkS {shrink:.2}x");
}

#[test]
fn carbon_savings_bands() {
    // §4.1: "3–8% CO2e savings in current designs … 11–20% [renewables]".
    assert!((0.02..=0.05).contains(&CarbonParams::shrink().savings()));
    assert!((0.06..=0.10).contains(&CarbonParams::regen().savings()));
    assert!((0.08..=0.13).contains(&CarbonParams::shrink().savings_renewable()));
    assert!((0.17..=0.22).contains(&CarbonParams::regen().savings_renewable()));
}

#[test]
fn tco_savings_bands() {
    // §4.4: "13% and 25% cost savings for ShrinkS and RegenS".
    assert!((0.11..=0.15).contains(&TcoParams::shrink().savings()));
    assert!((0.22..=0.28).contains(&TcoParams::regen().savings()));
    // "if we assume half the cost is operational … 6–14%".
    assert!((0.05..=0.16).contains(&TcoParams::shrink().with_opex(0.5).savings()));
    assert!((0.05..=0.16).contains(&TcoParams::regen().with_opex(0.5).savings()));
}

#[test]
fn perf_degradation_25_percent_at_l1() {
    // §4.2: "sequential access throughput … degrades by a factor of
    // 4/(4−L) … e.g., 25% reduction for L1"; small accesses unaffected.
    assert!((perf::seq_throughput_rel(1.0) - 0.75).abs() < 1e-9);
    assert!((perf::large_random_latency_rel(1.0) - 4.0 / 3.0).abs() < 1e-9);
    assert_eq!(perf::small_random_latency_rel(1.0), 1.0);
}

#[test]
fn baseline_bricks_at_2_5_percent_bad_blocks() {
    // §2: firmware stops functioning past a threshold of worn-out blocks
    // "(e.g., 2.5%)". Verify the configured default and the behaviour.
    let cfg = SsdConfig::small_test().mode(Mode::Baseline);
    assert_eq!(cfg.ftl_config().bad_block_limit, 0.025);
    let r = EnduranceSim::new(cfg).run();
    // The baseline dies with its full capacity still committed — the
    // "considerable lifetime potential left" the paper laments.
    let before_death = &r.timeline[r.timeline.len() - 2];
    assert_eq!(before_death.minidisks, 1);
    assert!(before_death.committed_lbas > 0);
}

#[test]
fn minidisk_failure_granularity_matches_msize() {
    // §1's example: failures are exposed in minidisk-sized units rather
    // than whole-device units.
    let r = EnduranceSim::new(SsdConfig::small_test().mode(Mode::Shrink)).run();
    let msize_lbas = 256 * 1024 / 4096u64;
    for w in r.timeline.windows(2) {
        let drop = w[0].committed_lbas - w[1].committed_lbas;
        assert_eq!(drop % msize_lbas, 0, "capacity drops in whole minidisks");
    }
}
