//! Cross-validation: the statistical fleet device (`salamander-fleet`)
//! against the functional FTL (`salamander-ftl`) on the same geometry and
//! wear model. The statistical model trades per-write fidelity for speed;
//! these tests pin down what it must preserve: mode ordering, lifetime
//! ratios within a reasonable band, and the capacity-decline shape.

use salamander::config::{Mode, SsdConfig};
use salamander::sim::EnduranceSim;
use salamander_ecc::profile::Tiredness;
use salamander_flash::geometry::FlashGeometry;
use salamander_fleet::device::{StatDevice, StatDeviceConfig, StatMode};

/// Statistical lifetime in host oPage writes, stepping finely.
fn stat_lifetime(mode: StatMode, wa: f64, seed: u64) -> u64 {
    let cfg = StatDeviceConfig {
        geometry: FlashGeometry::small_test(),
        rber: salamander_flash::rber::RberModel::fast_wear(),
        write_amplification: wa,
        mode,
        msize_opages: 64,
        ..StatDeviceConfig::datacenter(mode)
    };
    let mut d = StatDevice::new(cfg, seed);
    let mut total = 0u64;
    while !d.is_dead() && total < 1_000_000_000 {
        d.apply_writes(500);
        total += 500;
    }
    total
}

#[test]
fn mode_ordering_agrees() {
    // FTL (functional).
    let ftl = EnduranceSim::compare_modes(SsdConfig::small_test());
    let (fb, fs, fr) = (
        ftl[0].host_opages_written,
        ftl[1].host_opages_written,
        ftl[2].host_opages_written,
    );
    assert!(fb < fs && fs < fr, "ftl ordering {fb} {fs} {fr}");
    // Statistical, write amplification matched to what the FTL measured.
    let wa = ftl[1].write_amplification;
    let sb = stat_lifetime(StatMode::Baseline, wa, 9);
    let ss = stat_lifetime(StatMode::Shrink, wa, 9);
    let sr = stat_lifetime(
        StatMode::Regen {
            max_level: Tiredness::L1,
        },
        wa,
        9,
    );
    assert!(sb < ss && ss < sr, "stat ordering {sb} {ss} {sr}");
}

#[test]
fn lifetime_ratios_within_band() {
    // The *ratios* between modes are the fleet simulator's load-bearing
    // output (Fig. 3); they must agree with the functional FTL even
    // though the absolute scales differ (the statistical model has no GC
    // dynamics).
    let ftl = EnduranceSim::compare_modes(SsdConfig::small_test());
    let ftl_shrink_ratio = ftl[1].host_opages_written as f64 / ftl[0].host_opages_written as f64;
    let wa = ftl[1].write_amplification;
    let stat_shrink_ratio = stat_lifetime(StatMode::Shrink, wa, 10) as f64
        / stat_lifetime(StatMode::Baseline, wa, 10) as f64;
    // The functional FTL wears blocks unevenly (GC randomness), which
    // kills its baseline earlier and inflates its ratio relative to the
    // ideal-wear-leveling statistical model; a 3x agreement band reflects
    // that known fidelity gap, while both stay on the same side of 1.
    let agreement = stat_shrink_ratio / ftl_shrink_ratio;
    assert!(ftl_shrink_ratio > 1.0 && stat_shrink_ratio > 1.0);
    assert!(
        (1.0 / 3.0..=3.0).contains(&agreement),
        "shrink/baseline ratio: ftl {ftl_shrink_ratio:.2} vs stat {stat_shrink_ratio:.2}"
    );
}

#[test]
fn capacity_decline_is_gradual_in_both() {
    // FTL: capacity timeline from the endurance sim, sampled finely
    // enough to catch individual decommissions on the fast-wear device.
    let mut sim = EnduranceSim::new(SsdConfig::small_test().mode(Mode::Shrink));
    sim.sample_every = 200;
    let r = sim.run();
    let ftl_steps: Vec<u64> = r
        .timeline
        .windows(2)
        .map(|w| w[0].committed_lbas - w[1].committed_lbas)
        .filter(|&d| d > 0)
        .collect();
    assert!(ftl_steps.len() > 3, "several decommission steps");
    // Statistical: capacity decreases in the same minidisk quanta.
    let cfg = StatDeviceConfig {
        geometry: FlashGeometry::small_test(),
        rber: salamander_flash::rber::RberModel::fast_wear(),
        mode: StatMode::Shrink,
        msize_opages: 64,
        ..StatDeviceConfig::datacenter(StatMode::Shrink)
    };
    let mut d = StatDevice::new(cfg, 11);
    let mut stat_steps = Vec::new();
    let mut prev = d.committed_opages();
    while !d.is_dead() {
        d.apply_writes(500);
        let now = d.committed_opages();
        if now < prev {
            stat_steps.push(prev - now);
        }
        prev = now;
    }
    assert!(stat_steps.len() > 3);
    // Both decline in whole minidisks.
    assert!(ftl_steps.iter().all(|s| s % 64 == 0));
    assert!(stat_steps.iter().all(|s| s % 64 == 0));
}

#[test]
fn regen_level_occupancy_agrees() {
    // Run both models to mid-life and compare the L1 page fraction.
    let mut ssd =
        salamander::device::SalamanderSsd::open(SsdConfig::small_test().mode(Mode::Regen).seed(3));
    let mut state = 3u64;
    for _ in 0..6_000 {
        if ssd.is_dead() {
            break;
        }
        let mdisks = ssd.minidisks();
        if mdisks.is_empty() {
            break;
        }
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let id = mdisks[(state as usize / 7) % mdisks.len()];
        let lbas = ssd.minidisk_lbas(id).unwrap();
        let _ = ssd.write(id, (state % lbas as u64) as u32, None);
    }
    let ftl_l1 = ssd.pages_at_level(Tiredness::L1);
    // The statistical device at the FTL's average wear (from SMART).
    let avg_pec = ssd.smart().avg_pec;
    let cfg = StatDeviceConfig {
        geometry: FlashGeometry::small_test(),
        rber: salamander_flash::rber::RberModel::fast_wear(),
        mode: StatMode::Regen {
            max_level: Tiredness::L1,
        },
        msize_opages: 64,
        ..StatDeviceConfig::datacenter(StatMode::Shrink)
    };
    let mut d = StatDevice::new(cfg, 3);
    // Drive the statistical device to the same average wear.
    while d.wear() < avg_pec && !d.is_dead() {
        d.apply_writes(100);
    }
    let stat_l1 = d.pages_at_level(1);
    // Same order of magnitude of L1 occupancy (different variance draws,
    // and the FTL wears blocks unevenly, so allow a wide band).
    if ftl_l1 > 0 {
        let ratio = stat_l1.max(1) as f64 / ftl_l1 as f64;
        assert!(
            (0.2..=5.0).contains(&ratio),
            "L1 occupancy: ftl {ftl_l1} vs stat {stat_l1} at wear {avg_pec:.0}"
        );
    }
}
