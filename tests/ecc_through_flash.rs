//! Cross-validation: the real BCH codec against the capability model,
//! through a real flash page.
//!
//! The FTL's read path decides correctable-vs-uncorrectable with the
//! closed-form capability model (`t` errors per chunk). This test drives
//! actual BCH codewords through a worn flash page and verifies that the
//! model's boundary is exactly the codec's: ≤ t injected errors decode,
//! > t are detected.

use salamander_ecc::bch::Bch;
use salamander_ecc::capability::{max_correctable_rber, page_uber};
use salamander_flash::array::FlashArray;
use salamander_flash::errors::BitFlipper;
use salamander_flash::geometry::FlashGeometry;
use salamander_flash::rber::RberModel;

/// Pack bools into bytes (LSB-first within each byte).
fn pack(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Unpack bytes into `n` bools.
fn unpack(bytes: &[u8], n: usize) -> Vec<bool> {
    (0..n).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect()
}

#[test]
fn bch_codeword_survives_flash_storage() {
    // The paper's L0 chunk: 1 KiB data, 128 B parity, t = 73.
    let code = Bch::new_shortened(14, 73, 8192).unwrap();
    let geom = FlashGeometry::small_test();
    let mut flash = FlashArray::new(geom, RberModel::fast_wear().no_variance(), 17);
    let fp = geom.fpage_addr(0, 0, 0);
    let blk = geom.block_of(fp);

    // Wear the block so reads inject a meaningful number of raw errors,
    // but stay below the code's capability across the whole page.
    for _ in 0..30 {
        flash.program(fp, None).unwrap();
        flash.erase(blk).unwrap();
    }

    // Build a page image holding one codeword at the front.
    let data: Vec<bool> = (0..code.data_bits()).map(|i| (i * 7) % 3 == 0).collect();
    let cw = code.encode(&data);
    let mut page = pack(&cw);
    page.resize((geom.fpage_data_bytes + geom.fpage_spare_bytes) as usize, 0);
    flash.program(fp, Some(&page)).unwrap();

    let out = flash.read(fp).unwrap();
    let corrupted = out.data.unwrap();
    let mut received = unpack(&corrupted, code.codeword_bits());
    // Count how many errors landed inside the codeword region.
    let landed: usize = cw.iter().zip(&received).filter(|(a, b)| a != b).count();
    let decoded = code.decode(&mut received);
    if landed <= 73 {
        assert_eq!(decoded, Ok(landed), "codec corrects exactly what landed");
        assert_eq!(&received[..code.data_bits()], &data[..]);
    } else {
        assert!(decoded.is_err(), "beyond capability must be detected");
    }
}

#[test]
fn capability_boundary_matches_codec_exactly() {
    let code = Bch::new_shortened(13, 24, 4096).unwrap();
    let data: Vec<bool> = (0..code.data_bits()).map(|i| i % 2 == 0).collect();
    let clean = code.encode(&data);
    let mut flipper = BitFlipper::new(3);
    // At exactly t errors the codec always succeeds; at t+1 it must not
    // silently miscorrect back to the original.
    for trial in 0..20 {
        let mut cw = clean.clone();
        let pos = flipper.draw_positions(24, code.codeword_bits() as u64);
        for &p in &pos {
            cw[p as usize] = !cw[p as usize];
        }
        assert_eq!(code.decode(&mut cw), Ok(24), "trial {trial}");
        assert_eq!(cw, clean);

        let mut cw = clean.clone();
        let pos = flipper.draw_positions(25, code.codeword_bits() as u64);
        for &p in &pos {
            cw[p as usize] = !cw[p as usize];
        }
        match code.decode(&mut cw) {
            Err(_) => {}
            Ok(_) => assert_ne!(cw, clean, "t+1 errors cannot decode to the original"),
        }
    }
}

#[test]
fn model_uber_predicts_codec_failure_rate_direction() {
    // At an RBER well below the model's max, the codec virtually never
    // fails; well above, it fails often. Uses a small code so the
    // statistics are cheap.
    let code = Bch::new_shortened(12, 12, 2048).unwrap();
    let n = code.codeword_bits() as u64;
    let safe_rber = max_correctable_rber(n, 12, 1e-9);
    let data: Vec<bool> = (0..code.data_bits()).map(|i| i % 3 == 0).collect();
    let clean = code.encode(&data);

    let run = |rber: f64, trials: u32| -> u32 {
        let mut flipper = BitFlipper::new(42);
        let mut failures = 0;
        for _ in 0..trials {
            let mut cw = clean.clone();
            let count = flipper.draw_error_count(rber, n);
            let pos = flipper.draw_positions(count, n);
            for &p in &pos {
                cw[p as usize] = !cw[p as usize];
            }
            if code.decode(&mut cw) != Ok(count as usize) {
                failures += 1;
            }
        }
        failures
    };

    assert_eq!(run(safe_rber, 200), 0, "below the boundary: no failures");
    let heavy = run(safe_rber * 8.0, 200);
    assert!(
        heavy > 20,
        "well above the boundary: frequent failures ({heavy})"
    );
    // And the model agrees directionally.
    assert!(page_uber(n, 12, safe_rber) < 1e-8);
    assert!(page_uber(n, 12, safe_rber * 8.0) > 1e-3);
}

#[test]
fn full_page_codec_through_worn_flash() {
    use salamander_ecc::page_codec::PageCodec;
    use salamander_ecc::profile::{EccConfig, Tiredness};

    // A flash geometry whose pages match a small codec layout (4 KiB data
    // + 512 B spare, 1 KiB oPages).
    let geom = FlashGeometry {
        chips: 1,
        blocks_per_chip: 4,
        fpages_per_block: 8,
        fpage_data_bytes: 4096,
        fpage_spare_bytes: 512,
        opage_bytes: 1024,
    };
    let ecc = EccConfig {
        fpage_data_bytes: 4096,
        fpage_spare_bytes: 512,
        opage_bytes: 1024,
        chunk_data_bytes: 1024,
        target_page_uber: 1e-15,
    };
    let codec = PageCodec::new(ecc).unwrap();
    let mut flash = FlashArray::new(geom, RberModel::fast_wear().no_variance(), 23);
    let fp = geom.fpage_addr(0, 0, 0);
    let blk = geom.block_of(fp);
    // Wear to a meaningful-but-correctable RBER.
    for _ in 0..25 {
        flash.program(fp, None).unwrap();
        flash.erase(blk).unwrap();
    }
    // Encode four oPages with real parity, store, read back corrupted,
    // decode: the data must survive the injected errors.
    let opages: Vec<Vec<u8>> = (0..4).map(|i| vec![0x30 + i as u8; 1024]).collect();
    let refs: Vec<&[u8]> = opages.iter().map(|o| o.as_slice()).collect();
    let encoded = codec.encode_page(Tiredness::L0, &refs).unwrap();
    flash.program(fp, Some(&encoded)).unwrap();
    let out = flash.read(fp).unwrap();
    assert!(out.raw_bit_errors > 0, "worn page should inject errors");
    let decoded = codec
        .decode_page(Tiredness::L0, &out.data.unwrap())
        .expect("within capability at this wear level");
    assert_eq!(decoded.opages, opages);
    assert_eq!(decoded.corrected_bits as u64, out.raw_bit_errors);
}
