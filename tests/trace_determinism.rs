//! The DESIGN.md §9 determinism contract, enforced end to end: the
//! JSONL trace, rendered metrics, and health analytics (DESIGN.md §11)
//! of an observed run are byte-identical at any thread count.
//! `scripts/check.sh` runs this test explicitly.

use salamander::config::{Mode, SsdConfig};
use salamander::sim::EnduranceSim;
use salamander_exec::Threads;
use salamander_fleet::device::{StatDeviceConfig, StatMode};
use salamander_fleet::sim::{FleetConfig, FleetEngine, FleetSim};
use salamander_obs::{trace, MetricsRegistry, Profiler};

/// Render a full compare-modes run (all mode shards merged in mode
/// order) to (JSONL trace, Prometheus text, per-mode health JSON) at a
/// given thread count.
fn endurance_telemetry(threads: Threads) -> (String, String, String) {
    let cfg = SsdConfig::small_test();
    let profiler = Profiler::disabled();
    let observed = EnduranceSim::compare_modes_observed(cfg, threads, true, true, &profiler, None);
    let mut records = Vec::new();
    let mut metrics = MetricsRegistry::default();
    let mut health = String::new();
    for (o, mode) in observed.into_iter().zip(Mode::ALL) {
        records.extend(o.trace);
        metrics.merge(&o.metrics.relabelled(&format!("mode=\"{}\"", mode.name())));
        health.push_str(&serde_json::to_string(&o.health).expect("health serializes"));
        health.push('\n');
    }
    trace::resequence(&mut records);
    (trace::to_jsonl(&records), metrics.render(), health)
}

#[test]
fn endurance_trace_is_byte_identical_across_thread_counts() {
    let (trace_serial, metrics_serial, health_serial) = endurance_telemetry(Threads::fixed(1));
    let (trace_parallel, metrics_parallel, health_parallel) =
        endurance_telemetry(Threads::fixed(4));
    assert!(!trace_serial.is_empty());
    assert_eq!(
        trace_serial, trace_parallel,
        "trace depends on thread count"
    );
    assert_eq!(
        metrics_serial, metrics_parallel,
        "metrics depend on thread count"
    );
    // The health reports (forecasts, per-minidisk scores, anomalies)
    // are serialized JSON — byte identity covers every float and every
    // anomaly record.
    assert_eq!(
        health_serial, health_parallel,
        "health analytics depend on thread count"
    );
    assert!(
        health_serial.contains("\"mdisks\":[{"),
        "health reports carry per-minidisk detail: {health_serial}"
    );
    // And the JSONL round-trips losslessly.
    let parsed = trace::parse_jsonl(&trace_serial).expect("trace parses");
    assert_eq!(trace::to_jsonl(&parsed), trace_serial);
}

fn fleet_telemetry(threads: Threads, engine: FleetEngine) -> (String, String, String) {
    let sim = FleetSim::new(FleetConfig {
        device: StatDeviceConfig::datacenter(StatMode::Shrink),
        devices: 40,
        dwpd: 5.0,
        dwpd_sigma: 0.25,
        afr: 0.01,
        horizon_days: 1500,
        sample_every_days: 100,
        seed: 42,
    })
    .with_engine(engine);
    let o = sim.run_observed(threads, "fleet=determinism", &Profiler::disabled());
    let health = serde_json::to_string(&o.health).expect("fleet health serializes");
    (trace::to_jsonl(&o.trace), o.metrics.render(), health)
}

#[test]
fn fleet_trace_is_byte_identical_across_thread_counts() {
    let (trace_serial, metrics_serial, health_serial) =
        fleet_telemetry(Threads::fixed(1), FleetEngine::PerDevice);
    let (trace_parallel, metrics_parallel, health_parallel) =
        fleet_telemetry(Threads::fixed(4), FleetEngine::PerDevice);
    assert!(trace_serial.lines().count() > 1, "expected some deaths");
    assert_eq!(trace_serial, trace_parallel);
    assert_eq!(metrics_serial, metrics_parallel);
    assert_eq!(
        health_serial, health_parallel,
        "fleet health (wear-rate outlier scan) depends on thread count"
    );
}

/// ISSUE 7: the per-day fleet rollups (counts + wear/PEC/capacity/health
/// distributions, DESIGN.md §14) obey the same contract: byte-identical
/// JSON across BOTH engines and BOTH thread counts. Integer bins and
/// shard-order merges mean there is no float accumulation to drift.
#[test]
fn fleet_rollups_are_byte_identical_across_engines_and_thread_counts() {
    let rollups = |threads: Threads, engine: FleetEngine| {
        let sim = FleetSim::new(FleetConfig {
            device: StatDeviceConfig::datacenter(StatMode::Shrink),
            devices: 40,
            dwpd: 5.0,
            dwpd_sigma: 0.25,
            afr: 0.01,
            horizon_days: 1500,
            sample_every_days: 100,
            seed: 42,
        })
        .with_engine(engine);
        let o = sim.run_observed(threads, "fleet=determinism", &Profiler::disabled());
        (
            serde_json::to_string(&o.rollups).expect("rollups serialize"),
            o.rollups,
        )
    };
    let (reference, parsed) = rollups(Threads::fixed(1), FleetEngine::PerDevice);
    assert!(!parsed.is_empty(), "expected sampled-day rollups");
    assert!(
        parsed.windows(2).all(|w| w[0].day < w[1].day),
        "rollup days must be strictly increasing"
    );
    for r in &parsed {
        assert_eq!(r.alive + r.dead(), 40, "every device accounted for");
        assert_eq!(
            r.dist("wear").unwrap().iter().sum::<u32>(),
            r.alive,
            "wear histogram bins the survivors exactly"
        );
    }
    // Deaths accumulate over the horizon, so the series is not trivial.
    assert!(
        parsed.last().unwrap().dead() > parsed.first().unwrap().dead(),
        "expected deaths over a 1500-day horizon at 5 DWPD"
    );
    for (threads, engine, what) in [
        (Threads::fixed(4), FleetEngine::PerDevice, "per-device @4"),
        (Threads::fixed(1), FleetEngine::Cohort, "cohort @1"),
        (Threads::fixed(4), FleetEngine::Cohort, "cohort @4"),
    ] {
        assert_eq!(
            rollups(threads, engine).0,
            reference,
            "{what} rollups diverge from the per-device @1 reference"
        );
    }
}

/// ISSUE 9: the per-day latency rollups (integer-ns log2-bucket
/// histograms per op class, DESIGN.md §15) obey the same contract:
/// byte-identical JSON across BOTH engines and BOTH thread counts. A
/// RegenS fleet is used so the host-read distribution actually climbs
/// the multi-read ladder — the hardest case for merge determinism,
/// since every level contributes its own bucket.
#[test]
fn fleet_latency_rollups_are_byte_identical_across_engines_and_thread_counts() {
    use salamander_ecc::profile::Tiredness;
    let latency = |threads: Threads, engine: FleetEngine| {
        let sim = FleetSim::new(FleetConfig {
            device: StatDeviceConfig::datacenter(StatMode::Regen {
                max_level: Tiredness::L1,
            }),
            devices: 40,
            dwpd: 5.0,
            dwpd_sigma: 0.25,
            afr: 0.01,
            horizon_days: 1500,
            sample_every_days: 100,
            seed: 42,
        })
        .with_engine(engine);
        let o = sim.run_observed(threads, "fleet=determinism", &Profiler::disabled());
        (
            serde_json::to_string(&o.latency).expect("latency rollups serialize"),
            o.latency,
        )
    };
    let (reference, parsed) = latency(Threads::fixed(1), FleetEngine::PerDevice);
    assert!(!parsed.is_empty(), "expected sampled-day latency rollups");
    assert!(
        parsed.iter().any(|r| !r.is_empty()),
        "expected populated host read/write distributions"
    );
    // The RegenS multi-read tax must show up as a p99 rise over the
    // horizon (pages climb to L1, so reads cross a bucket edge).
    let p99 = |r: &salamander_obs::LatencyRollup| r.stat("host_read", "p99");
    let first = parsed.iter().find_map(p99).expect("early p99");
    let last = parsed.iter().rev().find_map(p99).expect("late p99");
    assert!(
        last > first,
        "expected the multi-read tax in the tail: first p99 {first}ns, last {last}ns"
    );
    for (threads, engine, what) in [
        (Threads::fixed(4), FleetEngine::PerDevice, "per-device @4"),
        (Threads::fixed(1), FleetEngine::Cohort, "cohort @1"),
        (Threads::fixed(4), FleetEngine::Cohort, "cohort @4"),
    ] {
        assert_eq!(
            latency(threads, engine).0,
            reference,
            "{what} latency rollups diverge from the per-device @1 reference"
        );
    }
}

/// ISSUE 10: the per-tick cluster durability rollups (DESIGN.md §16)
/// obey the same contract. The chunk-store harness is deterministic by
/// construction (integer counters, BTreeMap iteration order), so two
/// identically-seeded runs must produce byte-identical JSONL traces
/// and rollup JSON regardless of the global thread default — and every
/// cluster query must render string-identically over the flat JSONL
/// records and the indexed `.strc` form.
#[test]
fn cluster_rollups_are_byte_identical_and_format_agnostic() {
    use salamander_difs::types::DifsConfig;
    use salamander_fleet::bridge::ClusterHarness;
    use salamander_health::query;
    use salamander_obs::strc::{write_strc, StrcReader};
    use salamander_obs::{Obs, SimTime, TraceEvent};

    let run = || {
        let obs = Obs::recording();
        obs.trace.emit(
            SimTime::ZERO,
            TraceEvent::RunMarker {
                label: "cluster=determinism".to_string(),
            },
        );
        let mut h = ClusterHarness::new(DifsConfig {
            replication: 3,
            chunk_bytes: 256 * 1024,
            // Throttled repair stretches replication-exposure windows,
            // so the dwell histogram is non-trivial.
            recovery_chunks_per_tick: Some(2),
        })
        .with_obs(obs.clone());
        for s in 0..6 {
            h.add_device(SsdConfig::small_test().mode(Mode::Shrink).seed(100 + s));
        }
        h.fill(0.6);
        let mut rounds = 0;
        while h.alive_devices() > 0 && rounds < 60 {
            h.churn(250);
            rounds += 1;
        }
        h.check_invariants().expect("store invariants hold");
        let rollups = h.cluster_rollups();
        (trace::to_jsonl(&obs.trace.take()), rollups)
    };
    let (trace_a, rollups_a) = run();
    let (trace_b, rollups_b) = run();
    assert_eq!(trace_a, trace_b, "cluster trace is not deterministic");
    assert_eq!(
        serde_json::to_string(&rollups_a).expect("rollups serialize"),
        serde_json::to_string(&rollups_b).expect("rollups serialize"),
        "cluster rollup series is not deterministic"
    );
    assert!(rollups_a.len() > 10, "one rollup per churn round");
    let last = rollups_a.last().expect("rollups present");
    assert!(
        last.exposure_windows > 0,
        "throttled recovery must close some exposure windows"
    );
    assert!(
        last.exposure.iter().skip(1).sum::<u64>() > 0,
        "throttled recovery must stretch some windows past zero dwell"
    );
    assert!(last.repair_bytes > 0, "expected repair traffic");

    // Every cluster query renders identically over flat records and
    // the indexed .strc form.
    let records = trace::parse_jsonl(&trace_a).expect("trace parses");
    let path = std::env::temp_dir().join(format!(
        "salamander-cluster-determinism-{}.strc",
        std::process::id()
    ));
    write_strc(&path, &records, 64).expect("strc writes");
    let indexed = |f: &dyn Fn(&mut StrcReader) -> String| {
        let mut r = StrcReader::open(&path).expect("strc opens");
        f(&mut r)
    };
    assert_eq!(
        query::cluster(&records),
        indexed(&|r| query::cluster_strc(r).expect("cluster query")),
        "obsctl cluster diverges between JSONL and .strc"
    );
    assert_eq!(
        query::exposure(&records),
        indexed(&|r| query::exposure_strc(r).expect("exposure query")),
        "obsctl exposure diverges between JSONL and .strc"
    );
    let day = last.day;
    assert_eq!(
        query::drill(&records, day),
        indexed(&|r| query::drill_strc(r, day).expect("drill query")),
        "obsctl drill diverges between JSONL and .strc"
    );
    let _ = std::fs::remove_file(&path);
}

/// ISSUE 6: the cohort engine honors the same determinism contract —
/// its telemetry is byte-identical at any thread count — AND is
/// byte-identical to the legacy per-device engine's, so switching
/// engines never changes any observable output.
#[test]
fn cohort_engine_telemetry_matches_per_device_at_any_thread_count() {
    let reference = fleet_telemetry(Threads::fixed(1), FleetEngine::PerDevice);
    let cohort_serial = fleet_telemetry(Threads::fixed(1), FleetEngine::Cohort);
    let cohort_parallel = fleet_telemetry(Threads::fixed(4), FleetEngine::Cohort);
    assert!(reference.0.lines().count() > 1, "expected some deaths");
    assert_eq!(
        cohort_serial, cohort_parallel,
        "cohort telemetry depends on thread count"
    );
    assert_eq!(
        reference, cohort_serial,
        "cohort engine diverges from the per-device reference"
    );
}
