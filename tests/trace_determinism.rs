//! The DESIGN.md §9 determinism contract, enforced end to end: the
//! JSONL trace and rendered metrics of an observed run are
//! byte-identical at any thread count. `scripts/check.sh` runs this
//! test explicitly.

use salamander::config::{Mode, SsdConfig};
use salamander::sim::EnduranceSim;
use salamander_exec::Threads;
use salamander_fleet::device::{StatDeviceConfig, StatMode};
use salamander_fleet::sim::{FleetConfig, FleetSim};
use salamander_obs::{trace, MetricsRegistry, Profiler};

/// Render a full compare-modes run (all mode shards merged in mode
/// order) to (JSONL trace, Prometheus text) at a given thread count.
fn endurance_telemetry(threads: Threads) -> (String, String) {
    let cfg = SsdConfig::small_test();
    let profiler = Profiler::disabled();
    let observed = EnduranceSim::compare_modes_observed(cfg, threads, true, true, &profiler);
    let mut records = Vec::new();
    let mut metrics = MetricsRegistry::default();
    for (o, mode) in observed.into_iter().zip(Mode::ALL) {
        records.extend(o.trace);
        metrics.merge(&o.metrics.relabelled(&format!("mode=\"{}\"", mode.name())));
    }
    trace::resequence(&mut records);
    (trace::to_jsonl(&records), metrics.render())
}

#[test]
fn endurance_trace_is_byte_identical_across_thread_counts() {
    let (trace_serial, metrics_serial) = endurance_telemetry(Threads::fixed(1));
    let (trace_parallel, metrics_parallel) = endurance_telemetry(Threads::fixed(4));
    assert!(!trace_serial.is_empty());
    assert_eq!(
        trace_serial, trace_parallel,
        "trace depends on thread count"
    );
    assert_eq!(
        metrics_serial, metrics_parallel,
        "metrics depend on thread count"
    );
    // And the JSONL round-trips losslessly.
    let parsed = trace::parse_jsonl(&trace_serial).expect("trace parses");
    assert_eq!(trace::to_jsonl(&parsed), trace_serial);
}

fn fleet_telemetry(threads: Threads) -> (String, String) {
    let sim = FleetSim::new(FleetConfig {
        device: StatDeviceConfig::datacenter(StatMode::Shrink),
        devices: 40,
        dwpd: 5.0,
        dwpd_sigma: 0.25,
        afr: 0.01,
        horizon_days: 1500,
        sample_every_days: 100,
        seed: 42,
    });
    let o = sim.run_observed(threads, "fleet=determinism", &Profiler::disabled());
    (trace::to_jsonl(&o.trace), o.metrics.render())
}

#[test]
fn fleet_trace_is_byte_identical_across_thread_counts() {
    let (trace_serial, metrics_serial) = fleet_telemetry(Threads::fixed(1));
    let (trace_parallel, metrics_parallel) = fleet_telemetry(Threads::fixed(4));
    assert!(trace_serial.lines().count() > 1, "expected some deaths");
    assert_eq!(trace_serial, trace_parallel);
    assert_eq!(metrics_serial, metrics_parallel);
}
