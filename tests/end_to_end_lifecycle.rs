//! End-to-end lifecycle: real devices, real FTLs, real diFS, from fresh
//! deployment through shrinking, regeneration, recovery, and death.

use salamander::config::{Mode, SsdConfig};
use salamander::device::{HostEvent, SalamanderSsd};
use salamander_difs::types::DifsConfig;
use salamander_fleet::bridge::ClusterHarness;

fn difs_cfg() -> DifsConfig {
    DifsConfig {
        replication: 3,
        chunk_bytes: 256 * 1024,
        recovery_chunks_per_tick: None,
    }
}

/// Churn a single device and collect every event it ever emits.
fn life_events(mode: Mode, seed: u64) -> Vec<HostEvent> {
    let mut ssd = SalamanderSsd::open(SsdConfig::small_test().mode(mode).seed(seed));
    let mut events = Vec::new();
    let mut state = seed | 1;
    let mut guard = 0u64;
    while !ssd.is_dead() && guard < 3_000_000 {
        let mdisks = ssd.minidisks();
        if mdisks.is_empty() {
            break;
        }
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let id = mdisks[(state as usize / 7) % mdisks.len()];
        let lbas = ssd.minidisk_lbas(id).unwrap();
        let _ = ssd.write(id, (state % lbas as u64) as u32, None);
        events.extend(ssd.poll_events());
        guard += 1;
    }
    events.extend(ssd.poll_events());
    events
}

#[test]
fn regen_device_full_event_lifecycle() {
    let events = life_events(Mode::Regen, 1);
    let failed: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, HostEvent::MinidiskFailed { .. }))
        .collect();
    let created: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, HostEvent::MinidiskCreated { .. }))
        .collect();
    assert!(!failed.is_empty(), "device must shrink");
    assert!(!created.is_empty(), "device must regenerate");
    // Lifecycle ends with device failure, exactly once, as the last event.
    let death_count = events
        .iter()
        .filter(|e| matches!(e, HostEvent::DeviceFailed))
        .count();
    assert_eq!(death_count, 1);
    assert!(matches!(events.last(), Some(HostEvent::DeviceFailed)));
    // Every created minidisk either fails later or the device dies; ids
    // never repeat across the lifecycle.
    let mut seen = std::collections::HashSet::new();
    for e in &events {
        if let HostEvent::MinidiskCreated { id, .. } = e {
            assert!(seen.insert(*id), "minidisk ids must be unique");
        }
    }
}

#[test]
fn cluster_survives_device_aging_without_data_loss_until_capacity_gone() {
    // 6 nodes × 1 ShrinkS SSD, filled to 60%: as devices shrink the store
    // re-replicates; data loss may only appear once cluster capacity is
    // truly exhausted.
    let mut h = ClusterHarness::new(difs_cfg());
    for s in 0..6 {
        h.add_device(SsdConfig::small_test().mode(Mode::Shrink).seed(50 + s));
    }
    let chunks = h.fill(0.6);
    assert!(chunks > 0);
    let mut first_loss_capacity_ratio = None;
    let initial_capacity = h.cluster().alive_capacity();
    for _ in 0..200 {
        h.churn(5_000);
        h.check_invariants().unwrap();
        let m = h.metrics();
        if m.lost_chunks > 0 && first_loss_capacity_ratio.is_none() {
            first_loss_capacity_ratio =
                Some(h.cluster().alive_capacity() as f64 / initial_capacity as f64);
        }
        if h.alive_devices() == 0 {
            break;
        }
    }
    assert_eq!(h.alive_devices(), 0, "fast wear should exhaust the fleet");
    // Some loss is inevitable once the whole fleet dies, but it must not
    // start while the cluster still had most of its capacity.
    if let Some(ratio) = first_loss_capacity_ratio {
        assert!(
            ratio < 0.7,
            "data loss started while {}% capacity remained",
            (ratio * 100.0) as u32
        );
    }
    // Replication did real work first.
    assert!(h.metrics().recovery_bytes > 0);
}

#[test]
fn regen_cluster_recovers_more_but_keeps_capacity_longer() {
    let run = |mode: Mode| {
        let mut h = ClusterHarness::new(difs_cfg());
        for s in 0..4 {
            h.add_device(SsdConfig::small_test().mode(mode).seed(80 + s));
        }
        h.fill(0.5);
        let mut rounds_alive = 0;
        for _ in 0..300 {
            h.churn(5_000);
            if h.alive_devices() == 0 {
                break;
            }
            rounds_alive += 1;
        }
        (rounds_alive, h.metrics().recovery_bytes)
    };
    let (shrink_life, _) = run(Mode::Shrink);
    let (regen_life, _) = run(Mode::Regen);
    assert!(
        regen_life > shrink_life,
        "regen fleet lives longer: {regen_life} vs {shrink_life} rounds"
    );
}

#[test]
fn written_data_survives_device_shrinkage() {
    // Keep rewriting a working set with real payloads while the device
    // shrinks; every read of a surviving minidisk must return the last
    // written bytes (the FTL relocates data transparently).
    let mut ssd = SalamanderSsd::open(SsdConfig::small_test().mode(Mode::Shrink).seed(7));
    let opage = ssd.opage_bytes();
    let mut content: std::collections::HashMap<(u32, u32), u8> = std::collections::HashMap::new();
    let mut state = 0x1234_5678u64;
    for round in 0..60_000u32 {
        let mdisks = ssd.minidisks();
        if mdisks.is_empty() || ssd.is_dead() {
            break;
        }
        // Drop shadow entries for decommissioned minidisks.
        content.retain(|(m, _), _| mdisks.iter().any(|x| x.0 == *m));
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let id = mdisks[(state as usize / 7) % mdisks.len()];
        let lbas = ssd.minidisk_lbas(id).unwrap();
        let lba = (state % lbas as u64) as u32;
        let tag = (round % 251) as u8;
        if ssd.write(id, lba, Some(&vec![tag; opage])).is_ok() {
            content.insert((id.0, lba), tag);
        }
        // Periodically verify a few shadowed entries.
        if round % 5000 == 0 {
            let mdisks_now = ssd.minidisks();
            for (&(m, l), &tag) in content.iter().take(8) {
                if !mdisks_now.iter().any(|x| x.0 == m) {
                    continue;
                }
                match ssd.read(salamander_ftl::types::MdiskId(m), l) {
                    Ok(Some(bytes)) => assert_eq!(bytes, vec![tag; opage]),
                    Ok(None) => panic!("data write read back as synthetic"),
                    Err(e) => panic!("read failed: {e}"),
                }
            }
        }
    }
    assert!(
        ssd.stats().mdisks_decommissioned > 0,
        "the device should have shrunk during the test"
    );
}
