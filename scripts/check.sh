#!/usr/bin/env bash
# Offline-friendly repository checks: format, lints, build, tests.
#
# Everything runs against the vendored dependency stand-ins under
# vendor/ — no network or registry access is needed at any point.
#
# Usage: scripts/check.sh [--quick] [--bench]
#   --quick   skip the release build (debug build + tests only)
#   --bench   also run the perf-regression gate (scripts/bench.sh --check)

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
bench=0
for arg in "$@"; do
    case "$arg" in
    --quick) quick=1 ;;
    --bench) bench=1 ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings

# Library crates must not print: structured output goes through
# salamander-obs (DESIGN.md §9). The bench harness binaries (and the
# report/profile printers that exist to print) are the only exemptions.
echo "==> checking library crates for println!"
if grep -rn 'println!' crates/*/src \
    --include='*.rs' \
    --exclude-dir=bin |
    grep -v '^crates/bench/' |
    grep -v 'crates/core/src/report.rs' |
    grep -v '^\s*//' |
    grep -v '///'; then
    echo "error: println! in a library crate; emit through salamander-obs instead" >&2
    exit 1
fi

if [ "$quick" -eq 0 ]; then
    run cargo build --release --workspace
fi
# Tier-1 gate: the release build above plus the test suite.
run cargo test --workspace -q
# The DESIGN.md §9 determinism contract, enforced explicitly: traces
# and metrics must be byte-identical at any thread count.
run cargo test --test trace_determinism

# obsctl end-to-end smoke (DESIGN.md §11): trace a real run from a
# scratch cwd (so its results/ and metrics stay out of the repo), then
# drive every query against the artifacts. Needs the release binaries,
# so it only runs in full mode.
if [ "$quick" -eq 0 ]; then
    echo "==> obsctl smoke"
    repo="$PWD"
    smoke="$(mktemp -d)"
    trap 'rm -rf "$smoke"' EXIT
    (
        cd "$smoke"
        mkdir -p results
        "$repo/target/release/lifetime" --modes-only \
            --trace run.jsonl --metrics >/dev/null
        for q in "lifecycle run.jsonl" "why run.jsonl" \
            "fleet run.jsonl --csv" "health run.jsonl" \
            "diff results/lifetime.prom results/lifetime.prom"; do
            # shellcheck disable=SC2086
            out="$("$repo/target/release/obsctl" $q)"
            if [ -z "$out" ]; then
                echo "error: obsctl $q produced no output" >&2
                exit 1
            fi
        done
        echo "obsctl smoke passed"
    )
fi

# Opt-in perf gate: wall-clock measurements are machine-dependent, so
# the regression check only runs when explicitly requested.
if [ "$bench" -eq 1 ]; then
    run scripts/bench.sh --check
fi

echo "All checks passed."
