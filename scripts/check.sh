#!/usr/bin/env bash
# Offline-friendly repository checks: format, lints, build, tests.
#
# Everything runs against the vendored dependency stand-ins under
# vendor/ — no network or registry access is needed at any point.
#
# Usage: scripts/check.sh [--quick] [--bench]
#   --quick   skip the release build (debug build + tests only)
#   --bench   also run the perf-regression gate (scripts/bench.sh --check)

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
bench=0
for arg in "$@"; do
    case "$arg" in
    --quick) quick=1 ;;
    --bench) bench=1 ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings

# Library crates must not print: structured output goes through
# salamander-obs (DESIGN.md §9), and the telemetry server answers over
# HTTP, never stdout. The bench harness binaries (and the
# report/profile printers that exist to print) are the only exemptions.
echo "==> checking library crates (incl. salamander-telemetry) for println!"
if grep -rn 'println!' crates/*/src \
    --include='*.rs' \
    --exclude-dir=bin |
    grep -v '^crates/bench/' |
    grep -v 'crates/core/src/report.rs' |
    grep -v '^\s*//' |
    grep -v '///'; then
    echo "error: println! in a library crate; emit through salamander-obs instead" >&2
    exit 1
fi

# Float sorts must be NaN-total: a NaN from a degenerate configuration
# must produce a deterministic order (and surface downstream), never a
# panic inside a comparator. `f64::total_cmp` is the only accepted
# float comparator in sorts; `partial_cmp().unwrap()` has bitten twice
# (fleet variance sort, bench percentile sort).
echo "==> checking for NaN-unsafe float sorts (partial_cmp in sort_*)"
if grep -rn 'sort[a-z_]*(' crates/*/src crates/*/tests vendor/*/src \
    --include='*.rs' -A2 |
    grep 'partial_cmp' |
    grep -v '^\s*//'; then
    echo "error: float sort via partial_cmp; use f64::total_cmp instead" >&2
    exit 1
fi

if [ "$quick" -eq 0 ]; then
    run cargo build --release --workspace
fi
# Tier-1 gate: the release build above plus the test suite.
run cargo test --workspace -q
# The DESIGN.md §9 determinism contract, enforced explicitly: traces
# and metrics must be byte-identical at any thread count.
run cargo test --test trace_determinism

# obsctl end-to-end smoke (DESIGN.md §11): trace a real run from a
# scratch cwd (so its results/ and metrics stay out of the repo), then
# drive every query against the artifacts. Needs the release binaries,
# so it only runs in full mode.
if [ "$quick" -eq 0 ]; then
    echo "==> obsctl smoke"
    repo="$PWD"
    smoke="$(mktemp -d)"
    trap 'rm -rf "$smoke"' EXIT
    (
        cd "$smoke"
        mkdir -p results
        "$repo/target/release/lifetime" --modes-only \
            --trace run.jsonl --metrics >/dev/null
        # Convert to the indexed binary format and drive every trace
        # query against both; the indexed path must answer identically.
        "$repo/target/release/obsctl" convert run.jsonl run.strc 2>/dev/null
        for q in "lifecycle run.jsonl" "why run.jsonl" \
            "fleet run.jsonl --csv" "health run.jsonl" \
            "lifecycle run.strc" "why run.strc" \
            "fleet run.strc --csv" "health run.strc" \
            "diff results/lifetime.prom results/lifetime.prom"; do
            # shellcheck disable=SC2086
            out="$("$repo/target/release/obsctl" $q)"
            if [ -z "$out" ]; then
                echo "error: obsctl $q produced no output" >&2
                exit 1
            fi
        done
        for q in lifecycle why fleet health; do
            if ! diff <("$repo/target/release/obsctl" "$q" run.jsonl) \
                <("$repo/target/release/obsctl" "$q" run.strc) >/dev/null; then
                echo "error: obsctl $q differs between JSONL and .strc" >&2
                exit 1
            fi
        done
        # Lossless round trip back to JSONL.
        "$repo/target/release/obsctl" convert run.strc run2.jsonl 2>/dev/null
        cmp run.jsonl run2.jsonl
        echo "obsctl smoke passed"

        # Fleet rollup queries (DESIGN.md §14): record a small fleet run
        # with per-day rollups, then drive the timeline / percentile /
        # drill-down queries over both formats.
        echo "==> obsctl fleet rollup smoke"
        "$repo/target/release/fig3a" --devices 40 --days 1500 \
            --trace fleet.jsonl >/dev/null
        "$repo/target/release/obsctl" convert fleet.jsonl fleet.strc 2>/dev/null
        for q in "fleet-timeline" "percentiles wear" "percentiles health" \
            "drill 900" "drill 360" "drill 1"; do
            set -- $q
            cmd="$1"
            shift
            if ! diff <("$repo/target/release/obsctl" "$cmd" fleet.jsonl "$@") \
                <("$repo/target/release/obsctl" "$cmd" fleet.strc "$@") >/dev/null; then
                echo "error: obsctl $q differs between JSONL and .strc" >&2
                exit 1
            fi
        done
        "$repo/target/release/obsctl" fleet-timeline fleet.strc |
            grep -q '== fleet=Baseline' ||
            {
                echo "error: fleet-timeline missing Baseline segment" >&2
                exit 1
            }
        "$repo/target/release/obsctl" percentiles fleet.strc wear |
            grep -q 'wear distribution' ||
            {
                echo "error: percentiles missing header" >&2
                exit 1
            }
        "$repo/target/release/obsctl" drill fleet.strc 900 |
            grep -q 'day 900' ||
            {
                echo "error: drill missing day detail" >&2
                exit 1
            }
        if "$repo/target/release/obsctl" percentiles fleet.strc bogus \
            2>/dev/null; then
            echo "error: percentiles accepted an unknown distribution" >&2
            exit 1
        fi
        echo "obsctl fleet rollup smoke passed"

        # Latency rollup queries (DESIGN.md §15): the fleet trace above
        # carries per-day tail-latency rollups; the latency table, the
        # per-class view, and the drill-down's latency section must be
        # string-identical over JSONL and the indexed .strc path.
        echo "==> obsctl latency smoke"
        for q in "latency" "latency host_read" "latency host_write"; do
            set -- $q
            cmd="$1"
            shift
            if ! diff <("$repo/target/release/obsctl" "$cmd" fleet.jsonl "$@") \
                <("$repo/target/release/obsctl" "$cmd" fleet.strc "$@") >/dev/null; then
                echo "error: obsctl $q differs between JSONL and .strc" >&2
                exit 1
            fi
        done
        "$repo/target/release/obsctl" latency fleet.strc |
            grep -q 'host_read' ||
            {
                echo "error: latency table missing host_read class" >&2
                exit 1
            }
        # Day 360 still has survivors in this config, so the drill
        # must include the latency distributions (day 900 is past the
        # last sample and reports "no rollup").
        "$repo/target/release/obsctl" drill fleet.strc 360 |
            grep -q 'latency' ||
            {
                echo "error: drill missing latency distributions" >&2
                exit 1
            }
        if "$repo/target/release/obsctl" latency fleet.strc bogus \
            2>/dev/null; then
            echo "error: latency accepted an unknown op class" >&2
            exit 1
        fi
        echo "obsctl latency smoke passed"

        # Cluster durability queries (DESIGN.md §16): a throttled
        # recovery run stretches replication-exposure windows past zero
        # dwell; the timeline, exposure report, and drill cluster
        # section must be string-identical over JSONL and the indexed
        # .strc path, and the trace must be byte-identical regardless
        # of the global thread default.
        echo "==> obsctl cluster smoke"
        SALAMANDER_THREADS=1 "$repo/target/release/recovery" \
            --recovery-budget 2 --churn 250 --trace cluster.jsonl >/dev/null
        SALAMANDER_THREADS=4 "$repo/target/release/recovery" \
            --recovery-budget 2 --churn 250 --trace cluster4.jsonl >/dev/null
        cmp cluster.jsonl cluster4.jsonl
        "$repo/target/release/obsctl" convert cluster.jsonl cluster.strc 2>/dev/null
        for q in "cluster" "exposure" "drill 14" "drill 1" "drill 999"; do
            set -- $q
            cmd="$1"
            shift
            if ! diff <("$repo/target/release/obsctl" "$cmd" cluster.jsonl "$@") \
                <("$repo/target/release/obsctl" "$cmd" cluster.strc "$@") >/dev/null; then
                echo "error: obsctl $q differs between JSONL and .strc" >&2
                exit 1
            fi
        done
        "$repo/target/release/obsctl" cluster cluster.strc |
            grep -q '== recovery=ShrinkS' ||
            {
                echo "error: cluster timeline missing ShrinkS segment" >&2
                exit 1
            }
        # The throttle must show up as a multi-tick dwell tail (p99
        # past one tick), not only same-tick repairs.
        "$repo/target/release/obsctl" exposure cluster.strc |
            grep -q 'p99<[0-9]*[02-9]' ||
            {
                echo "error: exposure report shows no stretched dwell tail" >&2
                exit 1
            }
        "$repo/target/release/obsctl" drill cluster.strc 14 |
            grep -q 'cluster durability' ||
            {
                echo "error: drill missing cluster durability section" >&2
                exit 1
            }
        echo "obsctl cluster smoke passed"
    )
fi

# Live telemetry smoke (DESIGN.md §12): run with --serve, scrape every
# endpoint over bash /dev/tcp (no curl dependency), and check that the
# final /metrics scrape equals the --metrics file byte-for-byte.
if [ "$quick" -eq 0 ]; then
    echo "==> live telemetry smoke"
    (
        cd "$smoke"
        "$repo/target/release/lifetime" --modes-only --metrics \
            --serve 127.0.0.1:0 --serve-linger 30 >/dev/null 2>serve.log &
        pid=$!
        addr=""
        for _ in $(seq 1 200); do
            addr="$(sed -n 's#^serving telemetry on http://\([^/]*\)/$#\1#p' serve.log | head -1)"
            [ -n "$addr" ] && break
            sleep 0.1
        done
        if [ -z "$addr" ]; then
            echo "error: telemetry server never announced an address" >&2
            kill "$pid" 2>/dev/null || true
            exit 1
        fi
        host="${addr%:*}"
        port="${addr##*:}"
        scrape() { # scrape <path> -> body on stdout
            exec 3<>"/dev/tcp/$host/$port"
            printf 'GET %s HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n' "$1" >&3
            # Body = everything after the blank header separator line.
            sed -e '1,/^\r\{0,1\}$/d' <&3
            exec 3<&- 3>&-
        }
        for path in /healthz /progress /metrics "/trace/tail?n=5" \
            /latency "/latency/series?class=host_read&stat=p99"; do
            if [ -z "$(scrape "$path")" ]; then
                echo "error: GET $path produced no body" >&2
                kill "$pid" 2>/dev/null || true
                exit 1
            fi
        done
        # Wait for the run to finish, then the final scrape must equal
        # the exposition on disk.
        for _ in $(seq 1 600); do
            scrape /progress | grep -q '"done":true' && break
            sleep 0.1
        done
        scrape /metrics >final.prom
        cmp final.prom results/lifetime.prom
        scrape /quit >/dev/null
        wait "$pid"
        echo "live telemetry smoke passed"

        # Live cluster telemetry (DESIGN.md §16): a throttled recovery
        # run publishes per-mode durability rollups; /cluster and
        # /cluster/series must serve them (the harness folds rollups
        # even with tracing off).
        echo "==> live cluster telemetry smoke"
        "$repo/target/release/recovery" --recovery-budget 2 --churn 250 \
            --serve 127.0.0.1:0 --serve-linger 30 >/dev/null 2>cserve.log &
        pid=$!
        addr=""
        for _ in $(seq 1 200); do
            addr="$(sed -n 's#^serving telemetry on http://\([^/]*\)/$#\1#p' cserve.log | head -1)"
            [ -n "$addr" ] && break
            sleep 0.1
        done
        if [ -z "$addr" ]; then
            echo "error: recovery telemetry server never announced an address" >&2
            kill "$pid" 2>/dev/null || true
            exit 1
        fi
        host="${addr%:*}"
        port="${addr##*:}"
        for _ in $(seq 1 600); do
            scrape /progress | grep -q '"done":true' && break
            sleep 0.1
        done
        scrape /cluster | grep -q '"exposure_windows"' ||
            {
                echo "error: /cluster missing rollups" >&2
                kill "$pid" 2>/dev/null || true
                exit 1
            }
        scrape "/cluster/series?metric=backlog_chunks" | grep -q '"series"' ||
            {
                echo "error: /cluster/series missing backlog series" >&2
                kill "$pid" 2>/dev/null || true
                exit 1
            }
        scrape /quit >/dev/null
        wait "$pid"
        echo "live cluster telemetry smoke passed"
    )
fi

# Opt-in perf gate: wall-clock measurements are machine-dependent, so
# the regression check only runs when explicitly requested.
if [ "$bench" -eq 1 ]; then
    run scripts/bench.sh --check
fi

echo "All checks passed."
