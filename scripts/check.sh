#!/usr/bin/env bash
# Offline-friendly repository checks: format, lints, build, tests.
#
# Everything runs against the vendored dependency stand-ins under
# vendor/ — no network or registry access is needed at any point.
#
# Usage: scripts/check.sh [--quick]
#   --quick   skip the release build (debug build + tests only)

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
for arg in "$@"; do
    case "$arg" in
    --quick) quick=1 ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
if [ "$quick" -eq 0 ]; then
    run cargo build --release --workspace
fi
# Tier-1 gate: the release build above plus the test suite.
run cargo test --workspace -q

echo "All checks passed."
