#!/usr/bin/env bash
# Perf-regression harness driver (DESIGN.md §10).
#
# Builds the release binaries, runs crates/bench/src/bin/perf.rs, and
# refreshes BENCH_ftl_micro.json / BENCH_lifetime.json at the repo root.
#
# Usage: scripts/bench.sh [--check] [--runs N]
#   --check   compare the fresh end-to-end median against the committed
#             BENCH_lifetime.json instead of overwriting it; fail if the
#             median regressed by more than 10%.
#   --runs N  timed repetitions per benchmark (default 20).

set -euo pipefail
cd "$(dirname "$0")/.."

check=0
runs=20
while [ $# -gt 0 ]; do
    case "$1" in
    --check) check=1 ;;
    --runs)
        runs="$2"
        shift
        ;;
    *)
        echo "unknown argument: $1" >&2
        exit 2
        ;;
    esac
    shift
done

echo "==> cargo build --release -p salamander-bench"
cargo build --release -q -p salamander-bench

if [ "$check" -eq 0 ]; then
    ./target/release/perf --runs "$runs"
    echo "Baselines refreshed. Commit BENCH_*.json to update the gate."
    exit 0
fi

# --check: measure into a scratch dir, then compare medians against the
# committed baseline. Only the end-to-end run is gated — the micro
# benches are attribution aids, too small to gate on a shared machine.
if [ ! -f BENCH_lifetime.json ]; then
    echo "error: no committed BENCH_lifetime.json to check against" >&2
    exit 1
fi
scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT
./target/release/perf --runs "$runs" --e2e-only --out "$scratch"

old=$(grep -o '"median_ns":[0-9]*' BENCH_lifetime.json | head -1 | cut -d: -f2)
new=$(grep -o '"median_ns":[0-9]*' "$scratch/BENCH_lifetime.json" | head -1 | cut -d: -f2)
if [ -z "$old" ] || [ -z "$new" ]; then
    echo "error: could not parse median_ns from bench reports" >&2
    exit 1
fi
# Fail when new > old * 1.10 (integer math: new*10 > old*11).
echo "end-to-end median: committed ${old} ns, fresh ${new} ns"
if [ $((new * 10)) -gt $((old * 11)) ]; then
    pct=$(((new - old) * 100 / old))
    echo "error: lifetime --modes-only regressed ${pct}% (> 10% budget)" >&2
    exit 1
fi
echo "Perf check passed (within 10% of committed baseline)."
