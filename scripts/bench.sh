#!/usr/bin/env bash
# Perf-regression harness driver (DESIGN.md §10).
#
# Builds the release binaries, runs crates/bench/src/bin/perf.rs, and
# refreshes BENCH_ftl_micro.json / BENCH_lifetime.json /
# BENCH_fleet_scale.json at the repo root. The refresh passes
# --fleet-full so the committed fleet report always carries the 100k
# legacy reference and the 1M entries (minutes of wall clock).
#
# Usage: scripts/bench.sh [--check] [--runs N]
#   --check   compare fresh medians against the committed
#             BENCH_lifetime.json and BENCH_fleet_scale.json instead of
#             overwriting them; fail if either gated median regressed
#             by more than 10%.
#   --runs N  timed repetitions per benchmark (default 20).

set -euo pipefail
cd "$(dirname "$0")/.."

check=0
runs=20
while [ $# -gt 0 ]; do
    case "$1" in
    --check) check=1 ;;
    --runs)
        runs="$2"
        shift
        ;;
    *)
        echo "unknown argument: $1" >&2
        exit 2
        ;;
    esac
    shift
done

echo "==> cargo build --release -p salamander-bench"
cargo build --release -q -p salamander-bench

if [ "$check" -eq 0 ]; then
    ./target/release/perf --runs "$runs" --fleet-full
    echo "Baselines refreshed. Commit BENCH_*.json to update the gate."
    exit 0
fi

# --check: measure into a scratch dir, then compare medians against the
# committed baselines. Gated entries: the end-to-end run and the first
# fleet_scale entry (the cheap, warm 10k cohort run) — the micro
# benches are attribution aids, too small to gate on a shared machine,
# and the heavyweight fleet entries are one-offs, not gates. The 10k
# cohort entry runs with per-day rollup kernels enabled (they are
# unconditional, DESIGN.md §14), so rollup overhead is priced into this
# gate: a kernel regression past the 10% budget fails here. The same
# goes for the latency histogram kernels (DESIGN.md §15): both engines
# fold per-class latency histograms on every sampled day even with no
# trace or serve attached, so the disabled-path cost of the latency
# observability sits inside this 10% budget too — the gate fails if the
# per-op cost accounting ever stops being effectively free.
if [ ! -f BENCH_lifetime.json ] || [ ! -f BENCH_fleet_scale.json ]; then
    echo "error: missing committed BENCH_lifetime.json or BENCH_fleet_scale.json" >&2
    exit 1
fi
scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT
./target/release/perf --runs "$runs" --e2e-only --out "$scratch"
./target/release/perf --fleet-only --fleet-runs 5 --out "$scratch"

# gate <label> <committed.json> <fresh.json>: compare the first
# median_ns in each; fail when fresh > committed * 1.10 (integer math:
# new*10 > old*11).
gate() {
    local label="$1" committed="$2" fresh="$3" old new pct
    old=$(grep -o '"median_ns":[0-9]*' "$committed" | head -1 | cut -d: -f2)
    new=$(grep -o '"median_ns":[0-9]*' "$fresh" | head -1 | cut -d: -f2)
    if [ -z "$old" ] || [ -z "$new" ]; then
        echo "error: could not parse median_ns from $label reports" >&2
        exit 1
    fi
    echo "$label median: committed ${old} ns, fresh ${new} ns"
    if [ $((new * 10)) -gt $((old * 11)) ]; then
        pct=$(((new - old) * 100 / old))
        echo "error: $label regressed ${pct}% (> 10% budget)" >&2
        exit 1
    fi
}
gate "lifetime --modes-only" BENCH_lifetime.json "$scratch/BENCH_lifetime.json"
gate "fleet_cohort_10k_shrink" BENCH_fleet_scale.json "$scratch/BENCH_fleet_scale.json"
echo "Perf check passed (within 10% of committed baselines)."
