//! Umbrella crate for the Salamander reproduction workspace.
//!
//! This crate exists to host the cross-crate integration tests in `tests/`
//! and the runnable examples in `examples/`. The actual library surface
//! lives in the member crates, re-exported here for convenience.

pub use salamander;
pub use salamander_difs as difs;
pub use salamander_ecc as ecc;
pub use salamander_flash as flash;
pub use salamander_fleet as fleet;
pub use salamander_ftl as ftl;
pub use salamander_sustain as sustain;
pub use salamander_workload as workload;
