//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator behind the `rand` traits.
//!
//! The block function is RFC-8439 ChaCha with 8 rounds (4 double
//! rounds) and the rand_chacha word layout: constants, 8 key words
//! (the 32-byte seed), 64-bit block counter, 64-bit stream id (0).
//! Output words are consumed in order, little-endian, matching the
//! upstream `ChaCha8Rng` stream for `next_u32`/`next_u64`/`fill_bytes`
//! on word boundaries.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// ChaCha with 8 rounds, keyed by a 32-byte seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    seed: [u8; 32],
    /// 128-bit counter/nonce block: low 64 bits count blocks.
    counter: u64,
    /// Buffered keystream block.
    buf: [u32; BLOCK_WORDS],
    /// Next unconsumed word in `buf` (WORDS = fully consumed).
    word_pos: usize,
}

#[inline(always)]
fn quarter(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn block(seed: &[u8; 32], counter: u64) -> [u32; BLOCK_WORDS] {
        let mut state = [0u32; BLOCK_WORDS];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..4 {
            // Column round.
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(initial) {
            *s = s.wrapping_add(i);
        }
        state
    }

    fn refill(&mut self) {
        self.buf = Self::block(&self.seed, self.counter);
        self.counter = self.counter.wrapping_add(1);
        self.word_pos = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.word_pos >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.word_pos];
        self.word_pos += 1;
        w
    }

    /// The seed this generator was built from.
    pub fn get_seed(&self) -> [u8; 32] {
        self.seed
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        ChaCha8Rng {
            seed,
            counter: 0,
            buf: [0; BLOCK_WORDS],
            word_pos: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let b = self.next_word().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

#[cfg(feature = "serde1")]
mod serde_impls {
    use super::{ChaCha8Rng, BLOCK_WORDS};
    use serde::{DeError, Value};

    impl serde::Serialize for ChaCha8Rng {
        fn to_value(&self) -> Value {
            Value::Object(vec![
                (
                    "seed".to_string(),
                    Value::Array(self.seed.iter().map(|&b| Value::U64(b as u64)).collect()),
                ),
                ("counter".to_string(), Value::U64(self.counter)),
                ("word_pos".to_string(), Value::U64(self.word_pos as u64)),
            ])
        }
    }

    impl<'de> serde::Deserialize<'de> for ChaCha8Rng {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            let obj = v
                .as_object()
                .ok_or_else(|| DeError::expected("object (ChaCha8Rng)", v))?;
            let seed: Vec<u8> = serde::de::field_as(obj, "seed")?;
            let seed: [u8; 32] = seed
                .try_into()
                .map_err(|_| DeError::msg("ChaCha8Rng seed must be 32 bytes"))?;
            let counter: u64 = serde::de::field_as(obj, "counter")?;
            let word_pos: usize = serde::de::field_as(obj, "word_pos")?;
            if word_pos > BLOCK_WORDS {
                return Err(DeError::msg("ChaCha8Rng word_pos out of range"));
            }
            let mut rng = ChaCha8Rng {
                seed,
                counter,
                buf: [0; BLOCK_WORDS],
                word_pos: BLOCK_WORDS,
            };
            if word_pos < BLOCK_WORDS {
                // The buffered block was generated from counter - 1.
                rng.buf = ChaCha8Rng::block(&seed, counter.wrapping_sub(1));
                rng.word_pos = word_pos;
            }
            Ok(rng)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use rand::{RngCore, SeedableRng};

        #[test]
        fn snapshot_resumes_mid_block() {
            let mut rng = ChaCha8Rng::seed_from_u64(77);
            for _ in 0..21 {
                rng.next_u32();
            }
            let v = serde::Serialize::to_value(&rng);
            let mut restored: ChaCha8Rng = serde::de::Deserialize::from_value(&v).unwrap();
            let a: Vec<u64> = (0..40).map(|_| rng.next_u64()).collect();
            let b: Vec<u64> = (0..40).map(|_| restored.next_u64()).collect();
            assert_eq!(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha_rfc8439_block_function() {
        // RFC 8439 §2.3.2 test vector uses 20 rounds; re-derive the
        // 8-round variant invariants instead: block(0) != block(1),
        // and the keyed stream differs from the zero-key stream.
        let k0 = [0u8; 32];
        let mut k1 = [0u8; 32];
        k1[0] = 1;
        assert_ne!(ChaCha8Rng::block(&k0, 0), ChaCha8Rng::block(&k0, 1));
        assert_ne!(ChaCha8Rng::block(&k0, 0), ChaCha8Rng::block(&k1, 0));
    }

    #[test]
    fn stream_is_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut c = ChaCha8Rng::seed_from_u64(10);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_draws_cover_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
