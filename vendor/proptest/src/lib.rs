//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use — `proptest!`, `prop_oneof!`, `prop_assert*!`,
//! `prop_assume!`, `any`, `Just`, ranges, tuples, `collection::vec`,
//! `prop_map`, `prop_flat_map` — over a deterministic ChaCha8-seeded
//! case generator. No shrinking: a failing case reports its inputs
//! (via `Debug` in the panic message) instead of minimizing them.
//!
//! Case streams are deterministic per (test name, case index), so
//! failures reproduce across runs.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Deterministic per-case random source handed to strategies.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Derive the generator for one test case.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(h ^ ((case as u64) << 1 | 1)))
    }

    /// Access the underlying rand generator.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.0
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "inputs rejected: {m}"),
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
    /// Abort if this many cases in a row are rejected by
    /// `prop_assume!` without an accepted case in between.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Default config with a custom case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe boxed strategy.
pub type BoxedStrategy<T> = Box<dyn DynStrategy<T>>;

/// Object-safe strategy surface used by [`BoxedStrategy`] and
/// [`Union`].
pub trait DynStrategy<T> {
    /// Generate one value.
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.as_ref().dyn_new_value(rng)
    }
}

/// Always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Weighted choice between strategies of one value type (the engine
/// behind `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from weighted arms. Panics if empty or all-zero weight.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof!: no positive weights");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum mismatch")
    }
}

macro_rules! strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! strategy_for_tuple {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )*};
}
strategy_for_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for a primitive type.
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.$via() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64, isize => next_u64,
);

impl Strategy for Any<bool> {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any(std::marker::PhantomData)
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        // Finite floats over a wide dynamic range.
        let mantissa: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let exp = rng.gen_range(-64i32..64);
        mantissa * (exp as f64).exp2()
    }
}

impl Arbitrary for f64 {
    type Strategy = Any<f64>;
    fn arbitrary() -> Any<f64> {
        Any(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Weighted (or unweighted) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Define property tests. Mirrors upstream's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, (a, b) in (any::<u8>(), any::<u8>())) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            let mut __case: u32 = 0;
            while __accepted < __config.cases {
                let mut __rng = $crate::TestRng::for_case(concat!(module_path!(), "::", stringify!($name)), __case);
                __case += 1;
                $(let $pat = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __result {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                        if __rejected > __config.max_global_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({})",
                                stringify!($name), __rejected
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), __case - 1, __msg
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 1u32..10, (a, b) in (any::<u8>(), 0u16..=4)) {
            prop_assert!((1..10).contains(&x));
            let _ = a;
            prop_assert!(b <= 4);
        }

        #[test]
        fn map_and_flat_map(v in (1u8..5).prop_flat_map(|n| (Just(n), 0u8..n)).prop_map(|(n, k)| (n, k))) {
            let (n, k) = v;
            prop_assert!(k < n);
        }

        #[test]
        fn oneof_and_vec(xs in crate::collection::vec(prop_oneof![2 => Just(1u8), 1 => Just(2u8)], 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x == 1 || x == 2));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn case_streams_are_deterministic() {
        use crate::{Strategy, TestRng};
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..8)
            .map(|i| s.new_value(&mut TestRng::for_case("t", i)))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|i| s.new_value(&mut TestRng::for_case("t", i)))
            .collect();
        assert_eq!(a, b);
    }
}
