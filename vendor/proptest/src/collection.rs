//! Collection strategies: `vec(element, size_range)`.

use crate::{Strategy, TestRng};
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Acceptable size specifications for [`vec`].
pub trait IntoSizeRange {
    /// Draw a concrete length.
    fn draw_len(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn draw_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn draw_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn draw_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy for `Vec<S::Value>` with a random length in `size`.
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.draw_len(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generate vectors of `element` with length drawn from `size`.
pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}
