//! Offline stand-in for `serde_json`: render and parse the vendored
//! serde [`Value`] tree as JSON text.
//!
//! Covers the API surface the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`], and [`Error`] — with 64-bit
//! integer fidelity and deterministic field order.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize `value` to a human-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parse JSON text into a [`Value`].
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    parse(s)
}

// ---------------------------------------------------------------- writer

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if !n.is_finite() {
                return Err(Error(format!("cannot serialize non-finite float {n}")));
            }
            // Rust's shortest-roundtrip Display; force a float marker so
            // integral floats stay visibly floats.
            let s = n.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at offset {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected `{`")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:`")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(from_str::<f64>("0.25").unwrap(), 0.25);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string("a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\\c\n""#).unwrap(), "a\"b\\c\n");
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX - 3;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let v: Vec<(u32, String)> = vec![(1, "a".into()), (2, "b".into())];
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"[[1,"a"],[2,"b"]]"#);
        let back: Vec<(u32, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn option_round_trips() {
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v: Vec<Vec<u8>> = vec![vec![1, 2], vec![]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u8>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_carry_position() {
        let e = from_str::<u64>("4x").unwrap_err();
        assert!(e.to_string().contains("offset"));
    }
}
