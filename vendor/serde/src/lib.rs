//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a serde-shaped (de)serialization framework around an
//! explicit value tree ([`Value`]) instead of upstream's
//! visitor-driven data model:
//!
//! - [`ser::Serialize`] produces a [`Value`]; [`ser::Serializer`] is
//!   any sink that consumes one (`serde_json` renders it to text).
//! - [`de::Deserialize`] builds `Self` from a [`Value`];
//!   [`de::Deserializer`] is any source that yields one.
//!
//! The trait *signatures* mirror upstream closely enough that the
//! repo's code — `#[derive(Serialize, Deserialize)]`, custom
//! `#[serde(with = "...")]` modules generic over `S: Serializer` /
//! `D: Deserializer<'de>` — compiles unchanged.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{DeError, Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
