//! Serialization half of the data model.

use crate::value::Value;

/// A sink that consumes one [`Value`] tree.
///
/// Mirrors upstream's `Serializer` closely enough for generic helper
/// code (`fn serialize<S: Serializer>(x, s: S) -> Result<S::Ok,
/// S::Error>`) to compile unchanged; `collect_seq` is the one
/// upstream combinator the repo uses.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type (unreachable for value sinks, kept for signature
    /// compatibility).
    type Error: std::fmt::Debug + std::fmt::Display;

    /// Consume a finished value tree.
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;

    /// Serialize an iterator as a sequence.
    fn collect_seq<I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        I: IntoIterator,
        I::Item: Serialize,
    {
        let items = iter.into_iter().map(|x| x.to_value()).collect();
        self.serialize_value(Value::Array(items))
    }
}

/// A type that can render itself as a [`Value`].
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;

    /// Drive a [`Serializer`] with the value tree (upstream-shaped
    /// entry point).
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 { Value::I64(*self as i64) } else { Value::U64(*self as u64) }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
