//! The self-describing value tree all (de)serialization passes through.

use crate::de::DeError;
use crate::ser::Serialize;

/// A JSON-shaped dynamic value.
///
/// Integers keep 64-bit precision (a plain `f64` payload would corrupt
/// write counters past 2^53); objects preserve insertion order so
/// serialized output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Binary float.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered string-keyed map.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object (field list), if this is one.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow as an array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view, widening any integer representation.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// Unsigned view of an integer value.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// Signed view of an integer value.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            Value::I64(n) => Some(n),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// One-word description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A [`crate::Serializer`] that materializes the value tree itself —
/// what derived code and `#[serde(with)]` helpers serialize into.
pub struct ValueSerializer;

impl crate::ser::Serializer for ValueSerializer {
    type Ok = Value;
    type Error = DeError;

    fn serialize_value(self, v: Value) -> Result<Value, DeError> {
        Ok(v)
    }
}

/// A [`crate::Deserializer`] over a borrowed [`Value`] node.
pub struct ValueDeserializer<'a> {
    value: &'a Value,
}

impl<'a> ValueDeserializer<'a> {
    /// Wrap a value node.
    pub fn new(value: &'a Value) -> Self {
        ValueDeserializer { value }
    }
}

impl<'de, 'a> crate::de::Deserializer<'de> for ValueDeserializer<'a> {
    type Error = DeError;

    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.value.clone())
    }
}

/// Serialize any `T` straight to a [`Value`] (infallible).
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}
