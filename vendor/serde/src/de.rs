//! Deserialization half of the data model.

use crate::value::Value;
use std::fmt;

/// Deserialization error: a message plus nothing else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Build from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }

    /// Standard "wrong shape" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Error construction hook, mirroring `serde::de::Error`.
pub trait Error: Sized {
    /// Build from any displayable message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

impl Error for DeError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

/// A source that yields one [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type produced by the source.
    type Error: Error + fmt::Debug + fmt::Display;

    /// Yield the value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type constructible from a [`Value`].
pub trait Deserialize<'de>: Sized {
    /// Build `Self` from a value node.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Drive construction from any [`Deserializer`] (upstream-shaped
    /// entry point).
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.take_value()?;
        Self::from_value(&v).map_err(|e| D::Error::custom(e))
    }
}

/// Look up a field of a derived struct's object representation.
pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::msg(format!("missing field `{name}`")))
}

/// Deserialize a field of a derived struct in one step.
pub fn field_as<'de, T: Deserialize<'de>>(
    obj: &[(String, Value)],
    name: &str,
) -> Result<T, DeError> {
    T::from_value(field(obj, name)?).map_err(|e| DeError::msg(format!("field `{name}`: {e}")))
}

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::msg(format!("{n} out of range")))
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::msg(format!("{n} out of range")))
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| DeError::expected("number", v))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("string", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::msg("expected single-character string")),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Vec::into_boxed_slice)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| DeError::msg(format!("expected array of length {N}, found {n}")))
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::expected("array (tuple)", v))?;
                if arr.len() != $len {
                    return Err(DeError::msg(format!(
                        "expected tuple of length {}, found {}", $len, arr.len()
                    )));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}
