//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of the `rand` 0.8 API it actually uses:
//! [`RngCore`], [`SeedableRng`] (with the rand_core 0.6 PCG32-based
//! `seed_from_u64` derivation, bit-compatible with upstream), and the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`).
//!
//! Sampling is stream-compatible with upstream `rand` 0.8 on the paths
//! this workspace uses: `gen_range` consumes width-matched draws with
//! upstream's widening-multiply acceptance zone (integers) and the
//! `[1, 2)` exponent trick (floats), and `gen_bool` mirrors Bernoulli's
//! `⌊p · 2^64⌋` threshold including the draw-free `p == 1.0` case — the
//! benchmark CSVs under `results/` reproduce bit-for-bit against runs
//! made with the real crates.

pub mod distributions;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// Core random-number source: 32/64-bit words and byte fills.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it over the seed with PCG32
    /// exactly like rand_core 0.6 so streams match upstream.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let bytes = pcg32(&mut state);
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // Match upstream's Bernoulli exactly: p == 1.0 short-circuits
        // without consuming randomness; otherwise compare one u64
        // against ⌊p · 2^64⌋.
        if p == 1.0 {
            return true;
        }
        let p_int = (p * ((1u64 << 63) as f64 * 2.0)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
