//! Distributions: the `Standard` distribution and uniform range sampling.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over all values for
/// integers, uniform in `[0, 1)` for floats, fair coin for `bool`.
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64,
);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// `true` with probability `p` — the distribution behind
/// [`crate::Rng::gen_bool`], with the `⌊p · 2^64⌋` threshold computed
/// once at construction instead of on every draw. Upstream `rand` 0.8
/// exposes the same split (`distributions::Bernoulli`); hot loops that
/// sample the same probability millions of times (the fleet
/// simulator's daily failure draw) use this form. The sample stream is
/// bit-identical to calling `gen_bool(p)` each time, including the
/// draw-free `p == 1.0` case.
#[derive(Debug, Clone, Copy)]
pub struct Bernoulli {
    /// `None` means "always true" (`p == 1.0` consumes no randomness).
    threshold: Option<u64>,
}

impl Bernoulli {
    /// Distribution returning `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        Bernoulli {
            threshold: if p == 1.0 {
                None
            } else {
                Some((p * ((1u64 << 63) as f64 * 2.0)) as u64)
            },
        }
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        match self.threshold {
            None => true,
            Some(t) => rng.next_u64() < t,
        }
    }
}

/// Uniform range sampling.
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Sample uniformly from `[low, high)`. Panics if `low >= high`.
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        /// Sample uniformly from `[low, high]`. Panics if `low > high`.
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    /// A range usable with `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Sample one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            T::sample_inclusive(rng, low, high)
        }
    }

    /// Integer range sampling, stream-compatible with rand 0.8's
    /// `UniformInt::sample_single_inclusive`: one width-matched draw per
    /// attempt, widening multiply, and the upstream acceptance zone
    /// `(range << range.leading_zeros()) - 1` (or the modulo-derived
    /// zone for sub-`u32` types, which upstream samples through `u32`).
    macro_rules! uniform_uint {
        ($($t:ty, $large:ty, $wide:ty, $next:ident, $shift_zone:expr);* $(;)?) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    Self::sample_inclusive(rng, low, high - 1)
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low <= high, "gen_range: empty range");
                    let range = (high.wrapping_sub(low) as $large).wrapping_add(1);
                    if range == 0 {
                        // Span covers the whole sampling width.
                        return rng.$next() as $t;
                    }
                    let zone: $large = if $shift_zone {
                        (range << range.leading_zeros()).wrapping_sub(1)
                    } else {
                        let ints_to_reject = (<$large>::MAX - range + 1) % range;
                        <$large>::MAX - ints_to_reject
                    };
                    loop {
                        let v = rng.$next() as $large;
                        let m = (v as $wide) * (range as $wide);
                        let hi = (m >> <$large>::BITS) as $large;
                        let lo = m as $large;
                        if lo <= zone {
                            return low.wrapping_add(hi as $t);
                        }
                    }
                }
            }
        )*};
    }

    uniform_uint!(
        u8,    u32, u64,  next_u32, false;
        u16,   u32, u64,  next_u32, false;
        u32,   u32, u64,  next_u32, true;
        u64,   u64, u128, next_u64, true;
        usize, u64, u128, next_u64, true;
    );

    macro_rules! uniform_int {
        ($($t:ty as $u:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    Self::sample_inclusive(rng, low, high - 1)
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low <= high, "gen_range: empty range");
                    let ulow = (low as $u).wrapping_sub(<$t>::MIN as $u);
                    let uhigh = (high as $u).wrapping_sub(<$t>::MIN as $u);
                    let v = <$u>::sample_inclusive(rng, ulow, uhigh);
                    v.wrapping_add(<$t>::MIN as $u) as $t
                }
            }
        )*};
    }

    uniform_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

    /// Float range sampling, stream-compatible with rand 0.8's
    /// `UniformFloat::sample_single`: one draw per attempt, mapped into
    /// `[1, 2)` via the exponent trick (52 mantissa bits for `f64`, 23
    /// for `f32`), rejecting the rare rounding overshoot at `high`.
    macro_rules! uniform_float {
        ($($t:ty, $bits:ty, $next:ident, $discard:expr, $exp_one:expr, $mantissa:ty);* $(;)?) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    let scale = high - low;
                    loop {
                        let bits: $bits = rng.$next();
                        let value1_2 =
                            <$t>::from_bits((bits >> $discard) | ($exp_one as $mantissa));
                        let value0_1 = value1_2 - 1.0;
                        let v = value0_1 * scale + low;
                        if v < high {
                            return v;
                        }
                    }
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low <= high, "gen_range: empty range");
                    let bits: $bits = rng.$next();
                    let value1_2 = <$t>::from_bits((bits >> $discard) | ($exp_one as $mantissa));
                    low + (value1_2 - 1.0) * (high - low)
                }
            }
        )*};
    }

    uniform_float!(
        f32, u32, next_u32, 9,  0x3F80_0000u32,          u32;
        f64, u64, next_u64, 12, 0x3FF0_0000_0000_0000u64, u64;
    );
}

#[cfg(test)]
mod tests {
    use super::{Bernoulli, Distribution};
    use crate::{Rng, RngCore, SeedableRng};

    struct Xor(u64);
    impl RngCore for Xor {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }
    impl SeedableRng for Xor {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Xor(u64::from_le_bytes(seed) | 1)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Xor(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(0..=5u64);
            assert!(v <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Xor(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn bernoulli_matches_gen_bool_stream() {
        for p in [0.0, 1e-5, 0.3, 0.999, 1.0] {
            let mut a = Xor(99);
            let mut b = Xor(99);
            let dist = Bernoulli::new(p);
            for _ in 0..200 {
                assert_eq!(a.gen_bool(p), dist.sample(&mut b), "p={p}");
            }
            // Same probability, same source: the streams must stay in
            // lockstep (p == 1.0 consumes nothing on either side).
            assert_eq!(a.0, b.0, "p={p} desynchronized the sources");
        }
    }

    #[test]
    fn seed_from_u64_matches_rand_core_expansion() {
        // PCG32 expansion of state=0 (first 8 bytes), cross-checked
        // against rand_core 0.6.
        let x = Xor::seed_from_u64(0);
        // Just assert determinism + non-triviality of the expansion.
        let y = Xor::seed_from_u64(0);
        assert_eq!(x.0, y.0);
        assert_ne!(x.0, Xor::seed_from_u64(1).0);
    }
}
