//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored
//! serde stand-in.
//!
//! No `syn`/`quote` (the registry is offline), so parsing walks the
//! raw `proc_macro::TokenStream`. Supported item shapes — the full
//! set this workspace uses:
//!
//! - structs with named fields, optionally carrying
//!   `#[serde(with = "path")]` per field;
//! - tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays);
//! - unit structs;
//! - enums with unit, newtype, tuple, and struct variants, in serde's
//!   externally-tagged representation.
//!
//! Generics are intentionally unsupported (the workspace derives only
//! on concrete types); hitting one fails the build loudly rather than
//! generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: name (named fields) and the `with` attribute.
struct Field {
    name: Option<String>,
    with: Option<String>,
}

/// A parsed variant of an enum.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// The item a derive was applied to.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

/// Extract `with = "path"` from the tokens inside `#[serde(...)]`.
fn serde_attr_with(group: &proc_macro::Group) -> Option<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    // Looking at: serde ( with = "path" ) — possibly other keys later.
    if tokens.len() != 2 {
        return None;
    }
    match (&tokens[0], &tokens[1]) {
        (TokenTree::Ident(i), TokenTree::Group(inner)) if i.to_string() == "serde" => {
            let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
            let mut idx = 0;
            while idx < inner.len() {
                if let TokenTree::Ident(key) = &inner[idx] {
                    if key.to_string() == "with"
                        && idx + 2 < inner.len()
                        && matches!(&inner[idx + 1], TokenTree::Punct(p) if p.as_char() == '=')
                    {
                        if let TokenTree::Literal(lit) = &inner[idx + 2] {
                            let s = lit.to_string();
                            return Some(s.trim_matches('"').to_string());
                        }
                    }
                }
                idx += 1;
            }
            None
        }
        _ => None,
    }
}

/// Skip attributes at `i`, returning any `with` path found in a
/// `#[serde(with = "...")]` among them.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, Option<String>) {
    let mut with = None;
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        if let Some(w) = serde_attr_with(g) {
            with = Some(w);
        }
        i += 2;
    }
    (i, with)
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, …) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advance past one field type, honoring `<...>` nesting so commas
/// inside generics don't terminate the field.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => break,
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parse the fields of a braced (named-field) body.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, with) = skip_attrs(&tokens, i);
        if j >= tokens.len() {
            break;
        }
        i = skip_vis(&tokens, j);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("serde_derive: expected field name, got {:?}", tokens[i]);
        };
        let name = name.to_string();
        i += 1;
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        i = skip_type(&tokens, i + 1);
        // Skip the trailing comma, if any.
        if i < tokens.len() {
            i += 1;
        }
        fields.push(Field {
            name: Some(name),
            with,
        });
    }
    fields
}

/// Count the fields of a parenthesized (tuple) body.
fn parse_tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        let (j, _) = skip_attrs(&tokens, i);
        if j >= tokens.len() {
            break;
        }
        i = skip_vis(&tokens, j);
        i = skip_type(&tokens, i);
        if i < tokens.len() {
            i += 1; // comma
        }
        arity += 1;
    }
    arity
}

/// Parse the variants of an enum body.
fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, _) = skip_attrs(&tokens, i);
        if j >= tokens.len() {
            break;
        }
        i = j;
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("serde_derive: expected variant name, got {:?}", tokens[i]);
        };
        let name = name.to_string();
        i += 1;
        let kind = if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    i += 1;
                    VariantKind::Named(parse_named_fields(g))
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    i += 1;
                    VariantKind::Tuple(parse_tuple_arity(g))
                }
                _ => VariantKind::Unit,
            }
        } else {
            VariantKind::Unit
        };
        // Skip an explicit discriminant (`= expr`) up to the comma.
        while i < tokens.len() && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        if i < tokens.len() {
            i += 1; // comma
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let TokenTree::Ident(kw) = &tokens[i] else {
        panic!(
            "serde_derive: expected `struct` or `enum`, got {:?}",
            tokens[i]
        );
    };
    let kw = kw.to_string();
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde_derive: expected item name");
    };
    let name = name.to_string();
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: parse_tuple_arity(g),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g),
            },
            other => panic!("serde_derive: unsupported enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive on `{other}` items"),
    }
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                let fname = f.name.as_ref().unwrap();
                let value_expr = match &f.with {
                    Some(path) => format!(
                        "{path}::serialize(&self.{fname}, ::serde::value::ValueSerializer)\
                         .expect(\"value serialization is infallible\")"
                    ),
                    None => format!("::serde::ser::Serialize::to_value(&self.{fname})"),
                };
                pushes.push_str(&format!(
                    "__fields.push(({fname:?}.to_string(), {value_expr}));\n"
                ));
            }
            format!(
                "impl ::serde::ser::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::ser::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::ser::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::ser::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::ser::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::ser::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::ser::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}.to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone().unwrap()).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| {
                                format!(
                                    "({b:?}.to_string(), ::serde::ser::Serialize::to_value({b}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::ser::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let fname = f.name.as_ref().unwrap();
                let expr = match &f.with {
                    Some(path) => format!(
                        "{path}::deserialize(::serde::value::ValueDeserializer::new(\
                         ::serde::de::field(__obj, {fname:?})?))?"
                    ),
                    None => format!("::serde::de::field_as(__obj, {fname:?})?"),
                };
                inits.push_str(&format!("{fname}: {expr},\n"));
            }
            format!(
                "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object ({name})\", __v))?;\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!(
                    "::std::result::Result::Ok({name}(::serde::de::Deserialize::from_value(__v)?))"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::de::Deserialize::from_value(&__arr[{i}])?"))
                    .collect();
                format!(
                    "let __arr = __v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array ({name})\", __v))?;\n\
                     if __arr.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::DeError::msg(format!(\"expected {arity} elements, found {{}}\", __arr.len())));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            };
            format!(
                "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
                 fn from_value(_: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "{vname:?} => return ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vname}(::serde::de::Deserialize::from_value(__inner)?))"
                            )
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::de::Deserialize::from_value(&__arr[{i}])?")
                                })
                                .collect();
                            format!(
                                "let __arr = __inner.as_array().ok_or_else(|| ::serde::DeError::expected(\"array variant\", __inner))?;\n\
                                 if __arr.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(::serde::DeError::msg(\"wrong tuple variant arity\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))",
                                items.join(", ")
                            )
                        };
                        tagged_arms.push_str(&format!("{vname:?} => {{ {body} }}\n"));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let fname = f.name.as_ref().unwrap();
                                format!("{fname}: ::serde::de::field_as(__obj, {fname:?})?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                                 let __obj = __inner.as_object().ok_or_else(|| ::serde::DeError::expected(\"object variant\", __inner))?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                             }}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                             match __s {{\n{unit_arms}\
                                 _ => return ::std::result::Result::Err(::serde::DeError::msg(format!(\"unknown variant `{{__s}}` of {name}\"))),\n\
                             }}\n\
                         }}\n\
                         let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::expected(\"variant of {name}\", __v))?;\n\
                         if __obj.len() != 1 {{\n\
                             return ::std::result::Result::Err(::serde::DeError::msg(\"expected single-key variant object\"));\n\
                         }}\n\
                         let (__tag, __inner) = &__obj[0];\n\
                         match __tag.as_str() {{\n{tagged_arms}\
                             _ => ::std::result::Result::Err(::serde::DeError::msg(format!(\"unknown variant `{{__tag}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
