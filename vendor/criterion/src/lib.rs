//! Offline stand-in for `criterion`: enough of the API for the
//! workspace's `harness = false` bench targets to compile and produce
//! useful wall-clock numbers.
//!
//! Measurement is a plain median-of-samples timer (no outlier
//! analysis, no plots). Under `cargo test` (which builds and runs
//! bench targets with `--test`), every benchmark body executes exactly
//! once as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    samples: usize,
    smoke_only: bool,
    /// Median nanoseconds per iteration of the last routine.
    last_ns: f64,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_only {
            black_box(routine());
            self.last_ns = 0.0;
            return;
        }
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            samples.push(start.elapsed());
        }
        self.last_ns = median_ns(&mut samples);
    }

    /// Time `routine` with a fresh `setup` product per sample.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.smoke_only {
            black_box(routine(setup()));
            self.last_ns = 0.0;
            return;
        }
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed());
        }
        self.last_ns = median_ns(&mut samples);
    }
}

fn median_ns(samples: &mut [Duration]) -> f64 {
    samples.sort();
    samples[samples.len() / 2].as_nanos() as f64
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test`, bench targets run with `--test`: execute
        // each routine once and skip timing.
        let smoke_only = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 30,
            smoke_only,
        }
    }
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            smoke_only: self.smoke_only,
            last_ns: 0.0,
        };
        f(&mut b);
        if self.smoke_only {
            println!("bench {id}: ok (smoke)");
        } else {
            println!("bench {id}: median {:.1} ns/iter", b.last_ns);
        }
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let full = format!("{}/{}", self.name, id.into());
        self.parent.bench_function(full, f);
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declare the benchmark entry list.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
